package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dvfsched/internal/obs"
	"dvfsched/internal/server"
)

// testNode is one in-process cluster member listening on a real TCP
// socket — kills must look like a crashed process (refused
// connections), which httptest's in-memory transport cannot produce.
type testNode struct {
	id   string
	srv  *server.Server
	node *Node
	http *http.Server
	addr string
}

type testCluster struct {
	t      testing.TB
	ids    []string
	byID   map[string]*testNode
	client *http.Client
}

// startCluster boots n nodes named n1..nN on ephemeral ports. The
// listeners are bound before any node starts so every peer URL is
// known up front (static membership). testing.TB so benchmarks boot
// the same harness.
func startCluster(t testing.TB, n int, tweak func(*Config)) *testCluster {
	return startClusterWrapped(t, n, tweak, nil)
}

// startClusterWrapped is startCluster with a per-node listener wrap
// hook, so tests can observe raw connection traffic (wrap may return
// the listener unchanged; its Addr must stay that of the wrapped one).
func startClusterWrapped(t testing.TB, n int, tweak func(*Config), wrap func(id string, ln net.Listener) net.Listener) *testCluster {
	t.Helper()
	lns := make([]net.Listener, n)
	ids := make([]string, n)
	peers := make(map[string]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = fmt.Sprintf("n%d", i+1)
		if wrap != nil {
			ln = wrap(ids[i], ln)
		}
		lns[i] = ln
		peers[ids[i]] = "http://" + ln.Addr().String()
	}
	tc := &testCluster{
		t:      t,
		ids:    ids,
		byID:   make(map[string]*testNode, n),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	for i, id := range ids {
		srv := server.New(server.Config{})
		cfg := Config{ID: id, Peers: peers}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := NewNode(cfg, srv)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: node.Handler()}
		tc.byID[id] = &testNode{id: id, srv: srv, node: node, http: hs, addr: peers[id]}
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(hs, lns[i])
	}
	t.Cleanup(func() {
		for _, tn := range tc.byID {
			_ = tn.http.Close()
			tn.node.Close()
			tn.srv.Close()
		}
	})
	return tc
}

// kill makes a node drop off the network mid-flight: listener and all
// live connections closed, in-flight requests severed.
func (tc *testCluster) kill(id string) { _ = tc.byID[id].http.Close() }

// try sends one request through the given front; transport errors are
// returned, not fatal — the failover tests drive retries off them.
func (tc *testCluster) try(front, method, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(method, tc.byID[front].addr+path, bytes.NewReader(body))
	if err != nil {
		tc.t.Fatal(err)
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := tc.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// do is try with transport errors fatal, for the no-failure tests.
func (tc *testCluster) do(front, method, path string, body []byte) (int, []byte) {
	tc.t.Helper()
	code, b, err := tc.try(front, method, path, body)
	if err != nil {
		tc.t.Fatalf("%s %s via %s: %v", method, path, front, err)
	}
	return code, b
}

func (tc *testCluster) createSession(front string, body string) server.SessionInfo {
	tc.t.Helper()
	code, b := tc.do(front, http.MethodPost, "/v1/sessions", []byte(body))
	if code != http.StatusCreated {
		tc.t.Fatalf("create via %s: %d %s", front, code, b)
	}
	var info server.SessionInfo
	if err := json.Unmarshal(b, &info); err != nil {
		tc.t.Fatal(err)
	}
	return info
}

// taskBatch builds a submit body for sequential task IDs with strictly
// increasing arrivals derived from the IDs.
func taskBatch(ids []int, clamp bool) []byte {
	var sb strings.Builder
	sb.WriteString(`{"clamp":`)
	sb.WriteString(strconv.FormatBool(clamp))
	sb.WriteString(`,"tasks":[`)
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id":%d,"cycles":0.3,"arrival":%g}`, id, float64(id)*0.05)
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}

func parseJSONL(t testing.TB, b []byte) []obs.Event {
	t.Helper()
	var events []obs.Event
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %d: %v", len(events), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestClusterRoutedLifecycle drives a session's whole life through
// every front in turn: any node creates, submits, reads and drains a
// session regardless of where the ring placed it, IDs carry the
// minting node, the owner holds the live shard, the next ring
// candidate holds replica state, and the purge clears it everywhere.
func TestClusterRoutedLifecycle(t *testing.T) {
	tc := startCluster(t, 3, nil)
	for f, front := range tc.ids {
		info := tc.createSession(front, `{"cores":2}`)
		if !strings.HasPrefix(info.ID, "s-"+front+"-") {
			t.Fatalf("session ID %q not minted by front %s", info.ID, front)
		}
		cands := tc.byID[front].node.Route(info.ID)
		owner, replica := cands[0], cands[1]
		// Pick fronts that are NOT the owner so the ops must forward.
		others := make([]string, 0, 2)
		for _, id := range tc.ids {
			if id != owner {
				others = append(others, id)
			}
		}
		path := "/v1/sessions/" + info.ID

		ids := []int{f*10 + 1, f*10 + 2, f*10 + 3, f*10 + 4, f*10 + 5}
		code, b := tc.do(others[0], http.MethodPost, path+"/tasks", taskBatch(ids, false))
		if code != http.StatusOK {
			t.Fatalf("submit: %d %s", code, b)
		}

		code, b = tc.do(others[1], http.MethodGet, path, nil)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, b)
		}
		var st server.SessionInfo
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.Submitted != len(ids) {
			t.Fatalf("status via %s: submitted %d, want %d", others[1], st.Submitted, len(ids))
		}

		if !tc.byID[owner].srv.HasSession(info.ID) {
			t.Fatalf("ring owner %s does not hold session %s", owner, info.ID)
		}
		for _, id := range others {
			if tc.byID[id].srv.HasSession(info.ID) {
				t.Fatalf("non-owner %s holds a live shard for %s", id, info.ID)
			}
		}
		if _, ok := tc.byID[replica].node.replicas.get(info.ID); !ok {
			t.Fatalf("ring replica %s holds no replica state for %s", replica, info.ID)
		}

		code, b = tc.do(others[0], http.MethodDelete, path, nil)
		if code != http.StatusOK {
			t.Fatalf("drain: %d %s", code, b)
		}
		var dr server.DrainResponse
		if err := json.Unmarshal(b, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.Tasks != len(ids) {
			t.Fatalf("drain: %d tasks, want %d", dr.Tasks, len(ids))
		}
		if code, b = tc.do(others[1], http.MethodDelete, path, nil); code != http.StatusNoContent {
			t.Fatalf("purge: %d %s", code, b)
		}
		if _, ok := tc.byID[replica].node.replicas.get(info.ID); ok {
			t.Fatalf("purge left replica state for %s on %s", info.ID, replica)
		}
	}
	var forwards float64
	for _, id := range tc.ids {
		forwards += tc.byID[id].srv.Registry().Counter(obs.ClusterForwards).Value()
	}
	if forwards == 0 {
		t.Error("lifecycle through non-owner fronts forwarded nothing")
	}
}

// TestClusterReplicationParity pins the tentpole guarantee down at the
// byte level: after a session drains, the replica's shipped log equals
// the owner's trace exactly, and a session rebuilt from the replica's
// checkpoint + log (the promotion path) regenerates a byte-identical
// trace and the same final cost. CheckpointEvery is small so the
// restore-then-replay path is exercised, not just full replay.
func TestClusterReplicationParity(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) { c.CheckpointEvery = 4 })
	front := tc.ids[0]
	info := tc.createSession(front, `{"cores":2}`)
	path := "/v1/sessions/" + info.ID
	cands := tc.byID[front].node.Route(info.ID)
	owner, replicaID := cands[0], cands[1]

	next := 1
	for batch := 0; batch < 8; batch++ {
		ids := []int{next, next + 1, next + 2, next + 3}
		next += 4
		if code, b := tc.do(front, http.MethodPost, path+"/tasks", taskBatch(ids, false)); code != http.StatusOK {
			t.Fatalf("submit batch %d: %d %s", batch, code, b)
		}
	}
	code, b := tc.do(front, http.MethodDelete, path, nil)
	if code != http.StatusOK {
		t.Fatalf("drain: %d %s", code, b)
	}
	var dr server.DrainResponse
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Tasks != next-1 {
		t.Fatalf("drain: %d tasks, want %d", dr.Tasks, next-1)
	}

	ownerEvents, err := tc.byID[owner].srv.SessionEventsSince(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := tc.byID[replicaID].node.replicas.get(info.ID)
	if !ok {
		t.Fatalf("no replica state on %s", replicaID)
	}
	rep.mu.Lock()
	spec := rep.spec
	checkpoint := append([]byte(nil), rep.checkpoint...)
	log := rep.log.snapshot()
	rep.mu.Unlock()

	if len(checkpoint) == 0 {
		t.Fatal("no checkpoint shipped over 8 batches with CheckpointEvery=4")
	}
	if !bytes.Equal(obs.AppendBinary(nil, log), obs.AppendBinary(nil, ownerEvents)) {
		t.Fatalf("replica log diverges from owner trace: %d vs %d events", len(log), len(ownerEvents))
	}

	rb, err := server.ReplaySession(context.Background(), spec, 0, checkpoint, log)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rb.Sess.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rb.Submitted != dr.Tasks {
		t.Errorf("rebuilt session carries %d submitted, want %d", rb.Submitted, dr.Tasks)
	}
	got, want := obs.AppendBinary(nil, rb.Rec.Events()), obs.AppendBinary(nil, ownerEvents)
	if !bytes.Equal(got, want) {
		t.Fatalf("rebuilt trace not byte-identical: %d vs %d encoded bytes (%d vs %d events)",
			len(got), len(want), len(rb.Rec.Events()), len(ownerEvents))
	}
	gotCost := strconv.FormatFloat(res.TotalCost, 'g', -1, 64)
	wantCost := strconv.FormatFloat(dr.TotalCost, 'g', -1, 64)
	if gotCost != wantCost {
		t.Fatalf("rebuilt cost %s != acked drain cost %s", gotCost, wantCost)
	}
}

// submitRetry drives one batch through the cluster with the client
// protocol the cluster is designed for: transport errors, 5xx and 429
// rotate to another front and retry; a duplicate-task 400 on a retry
// means an earlier attempt was accepted but its ack was lost. Returns
// whether the batch is known accepted.
func (tc *testCluster) submitRetry(fronts []string, path string, body []byte) bool {
	tc.t.Helper()
	for attempt := 0; attempt < 40; attempt++ {
		front := fronts[attempt%len(fronts)]
		code, b, err := tc.try(front, http.MethodPost, path+"/tasks", body)
		switch {
		case err != nil, code >= 500, code == http.StatusTooManyRequests:
			time.Sleep(25 * time.Millisecond)
		case code == http.StatusOK:
			return true
		case code == http.StatusBadRequest && attempt > 0 && strings.Contains(string(b), "duplicate"):
			return true
		default:
			tc.t.Errorf("submit: unexpected status %d: %s", code, b)
			return false
		}
	}
	tc.t.Error("submit: retries exhausted")
	return false
}

// TestClusterFailover is the kill test: concurrent clients submit
// through non-owner fronts while the session's owner is killed
// mid-run. The replica must promote, no acknowledged batch may be
// lost, the surviving trace must be a gapless event sequence, and a
// serial rebuild of that trace must reproduce it byte-identically.
// Meaningful under -race (the checker runs it so).
func TestClusterFailover(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) { c.CheckpointEvery = 6 })
	front := tc.ids[0]
	info := tc.createSession(front, `{"cores":2}`)
	path := "/v1/sessions/" + info.ID
	cands := tc.byID[front].node.Route(info.ID)
	owner, replicaID := cands[0], cands[1]
	fronts := make([]string, 0, 2)
	for _, id := range tc.ids {
		if id != owner {
			fronts = append(fronts, id)
		}
	}

	// Warm up through the owner so there is replicated state to lose.
	if code, b := tc.do(fronts[0], http.MethodPost, path+"/tasks", taskBatch([]int{1, 2, 3, 4}, true)); code != http.StatusOK {
		t.Fatalf("warm-up submit: %d %s", code, b)
	}

	const clients, batches, perBatch = 3, 8, 2
	var killOnce sync.Once
	kill := func() { killOnce.Do(func() { tc.kill(owner) }) }
	var mu sync.Mutex
	acked := map[int]bool{1: true, 2: true, 3: true, 4: true}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			myFronts := append([]string{fronts[c%len(fronts)]}, fronts...)
			for b := 0; b < batches; b++ {
				if c == 0 && b == batches/2 {
					kill() // owner dies with clients mid-flight
				}
				base := 1000*(c+1) + perBatch*b
				ids := make([]int, perBatch)
				for i := range ids {
					ids[i] = base + i + 1
				}
				if tc.submitRetry(myFronts, path, taskBatch(ids, true)) {
					mu.Lock()
					for _, id := range ids {
						acked[id] = true
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	kill()
	if t.Failed() {
		t.FailNow()
	}

	// Drain through a survivor; a lost ack shows up as 204 on retry.
	drained := false
	for attempt := 0; attempt < 40 && !drained; attempt++ {
		code, b, err := tc.try(fronts[attempt%len(fronts)], http.MethodDelete, path, nil)
		switch {
		case err != nil || code >= 500:
			time.Sleep(25 * time.Millisecond)
		case code == http.StatusOK, code == http.StatusNoContent:
			drained = true
		default:
			t.Fatalf("drain: %d %s", code, b)
		}
	}
	if !drained {
		t.Fatal("drain retries exhausted")
	}

	if !tc.byID[replicaID].srv.HasSession(info.ID) {
		t.Errorf("replica %s never promoted session %s", replicaID, info.ID)
	}
	if v := tc.byID[replicaID].srv.Registry().Counter(obs.ClusterPromotions).Value(); v < 1 {
		t.Errorf("replica %s promotions counter %v, want >= 1", replicaID, v)
	}

	code, b, err := tc.try(fronts[0], http.MethodGet, path+"/events", nil)
	if err != nil || code != http.StatusOK {
		t.Fatalf("events: %d %v %s", code, err, b)
	}
	events := parseJSONL(t, b)
	if len(events) == 0 {
		t.Fatal("empty trace after failover")
	}
	arrivals := map[int]int{}
	completes := map[int]int{}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq %d — trace has a gap or reorder", i, ev.Seq)
		}
		switch ev.Kind {
		case obs.KindArrival:
			arrivals[ev.Task]++
		case obs.KindComplete:
			completes[ev.Task]++
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for id := range acked {
		if arrivals[id] != 1 {
			t.Errorf("acked task %d has %d arrivals in the surviving trace, want 1", id, arrivals[id])
		}
		if completes[id] != 1 {
			t.Errorf("acked task %d has %d completions, want 1", id, completes[id])
		}
	}
	for id := range arrivals {
		if arrivals[id] != 1 {
			t.Errorf("task %d has %d arrivals", id, arrivals[id])
		}
	}

	// Serial oracle: rebuild the whole session from the surviving trace
	// alone and drain it — byte-identical regeneration proves the trace
	// is internally consistent, not just complete.
	rb, err := server.ReplaySession(context.Background(), info.PlatformSpec, 0, nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Sess.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, want := obs.AppendBinary(nil, rb.Rec.Events()), obs.AppendBinary(nil, events)
	if !bytes.Equal(got, want) {
		t.Fatalf("oracle rebuild diverges from surviving trace: %d vs %d encoded bytes", len(got), len(want))
	}
}

// TestNodeConfigValidation pins the NewNode error paths the daemon's
// flag validation relies on.
func TestNodeConfigValidation(t *testing.T) {
	srv := server.New(server.Config{})
	defer srv.Close()
	if _, err := NewNode(Config{ID: "a"}, srv); err == nil {
		t.Error("empty peer set accepted")
	}
	if _, err := NewNode(Config{ID: "c", Peers: map[string]string{"a": "http://x", "b": "http://y"}}, srv); err == nil {
		t.Error("node ID outside the peer set accepted")
	}
	if _, err := NewNode(Config{ID: "a", Peers: map[string]string{"a": ""}}, srv); err == nil {
		t.Error("peer without address accepted")
	}
}
