package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("s-n1-%06d", i)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty node ID accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate node ID accepted")
	}
}

// TestRingDeterminism: the ring is a pure function of its membership —
// same nodes (in any order) map every key identically.
func TestRingDeterminism(t *testing.T) {
	r1, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(1000) {
		c1 := r1.Candidates(k, 3, nil)
		c2 := r2.Candidates(k, 3, nil)
		if len(c1) != 3 || len(c2) != 3 {
			t.Fatalf("key %s: candidate counts %d, %d", k, len(c1), len(c2))
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("key %s: rings disagree: %v vs %v", k, c1, c2)
			}
		}
		if r1.Owner(k) != c1[0] {
			t.Fatalf("key %s: Owner %s != first candidate %s", k, r1.Owner(k), c1[0])
		}
	}
}

// TestRingBalance: with virtual nodes, no node's share of a large
// keyspace collapses or explodes. The bound is deliberately loose —
// FNV over 64 vnodes is not a perfect spreader, we only need "no node
// is starved or doubled".
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r, err := NewRing(nodes, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(9000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys (counts: %v)", n, 100*share, counts)
		}
	}
}

// TestRingBoundedMovement: growing the membership by one node moves
// keys only TO the new node (no key shuffles between surviving nodes),
// and roughly its fair share of them — the consistent-hashing
// property that makes rebalances cheap.
func TestRingBoundedMovement(t *testing.T) {
	before, err := NewRing([]string{"n1", "n2", "n3"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(9000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != "n4" {
			t.Fatalf("key %s moved %s -> %s, not to the new node", k, was, is)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("adding 1 of 4 nodes moved %.1f%% of keys, want roughly 25%%", 100*frac)
	}
}

// TestRingCandidatesSkipDead: a dead owner is skipped and the failover
// chain keeps its relative order; reviving the node restores the
// original placement exactly (the ring itself never changes).
func TestRingCandidatesSkipDead(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		full := r.Candidates(k, 3, nil)
		dead := full[0]
		live := r.Candidates(k, 3, func(n string) bool { return n != dead })
		if len(live) != 2 {
			t.Fatalf("key %s: %d live candidates, want 2", k, len(live))
		}
		if live[0] != full[1] || live[1] != full[2] {
			t.Fatalf("key %s: failover order changed: full %v, live %v", k, full, live)
		}
	}
}
