package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"dvfsched/internal/obs"
)

// benchDiscardRW drops the response body, keeping only the status.
type benchDiscardRW struct {
	h      http.Header
	status int
}

func (w *benchDiscardRW) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}
func (w *benchDiscardRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchDiscardRW) WriteHeader(c int)           { w.status = c }

// sessionsOwnedBy returns n session IDs the current ring places on owner.
func sessionsOwnedBy(tb testing.TB, tc *testCluster, owner string, n int) []string {
	tb.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < 4096 && len(ids) < n; i++ {
		id := fmt.Sprintf("bench-%03d", i)
		if cands := tc.byID[owner].node.Route(id); len(cands) > 0 && cands[0] == owner {
			ids = append(ids, id)
		}
	}
	if len(ids) < n {
		tb.Fatalf("only %d of %d bench session IDs map to %s", len(ids), n, owner)
	}
	return ids
}

// benchSessions is how many owner-resident sessions the benchmark
// drives. One hot session is the steepest case for the ack rendezvous
// (every submit waits on the same cursor) while still exercising the
// stream's group commit: submits that land while a frame is on the
// wire ride the next frame together. Raising this spreads load across
// shards, which on small CPU counts measures scheduler churn more
// than the replication plane.
const benchSessions = 1

// BenchmarkReplicatedSubmit measures the cluster mutation hot path —
// concurrent single-task submits across benchSessions owner-resident
// sessions with "acked implies replicated" held — on both replication
// planes: `perRequest` is the synchronous per-mutation ship
// (ShipWindow -1, the pre-stream baseline), `stream` the pipelined
// per-peer frame stream. Requests run in-process against the owner's
// handler; replication crosses a real loopback socket either way, so
// the gap between the two sub-benchmarks is the stream's
// coalescing/multiplexing win.
func BenchmarkReplicatedSubmit(b *testing.B) {
	for _, mode := range []struct {
		name   string
		nodes  int
		window int
	}{
		// solo is the no-replication floor: a 1-node view never ships,
		// so this prices the cluster submit machinery both planes share.
		{"solo", 1, 0},
		{"perRequest", 2, -1},
		{"stream", 2, 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// Checkpoints snapshot the whole (growing) session, a cost
			// identical on both planes that scales with b.N and would
			// drown the ship-path signal being compared — park them.
			tc := startCluster(b, mode.nodes, func(c *Config) {
				c.ShipWindow = mode.window
				c.CheckpointEvery = 1 << 30
			})
			owner := "n1"
			ids := sessionsOwnedBy(b, tc, owner, benchSessions)
			h := tc.byID[owner].node.Handler()

			paths := make([]string, len(ids))
			for i, id := range ids {
				req := httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader([]byte(`{"cores":2}`)))
				req.Header.Set("X-Dvfs-Session-Id", id)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusCreated {
					b.Fatalf("create %s: %d %s", id, rec.Code, rec.Body)
				}
				var info struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil || info.ID != id {
					b.Fatalf("create returned %q (err %v), want %q", info.ID, err, id)
				}
				paths[i] = "/v1/sessions/" + id + "/tasks"
			}

			var seq atomic.Int64
			// 16 concurrent clients per GOMAXPROCS: the planes are compared
			// under contention, where the stream's group commit amortizes
			// and the per-request plane's convoy does not.
			b.SetParallelism(16)
			b.ReportAllocs()
			b.ResetTimer()
			framesBefore := tc.byID[owner].srv.Registry().Counter(obs.ClusterShipFrames).Value()
			b.RunParallel(func(pb *testing.PB) {
				w := &benchDiscardRW{}
				rd := bytes.NewReader(nil)
				req := httptest.NewRequest(http.MethodPost, paths[0], rd)
				buf := make([]byte, 0, 128)
				for pb.Next() {
					n := seq.Add(1)
					req.URL.Path = paths[int(n)%len(paths)]
					buf = append(buf[:0], `{"clamp":true,"tasks":[{"id":`...)
					buf = strconv.AppendInt(buf, n, 10)
					buf = append(buf, `,"cycles":2,"arrival":`...)
					buf = strconv.AppendInt(buf, n, 10)
					buf = append(buf, `}]}`...)
					rd.Reset(buf)
					req.Body = io.NopCloser(rd)
					h.ServeHTTP(w, req)
					if w.status != http.StatusOK {
						b.Errorf("submit %d: status %d", n, w.status)
						return
					}
				}
			})
			b.StopTimer()
			// frames/op shows the coalescing factor the stream achieved
			// (perRequest reports 0: its ships are not frames).
			frames := tc.byID[owner].srv.Registry().Counter(obs.ClusterShipFrames).Value() - framesBefore
			b.ReportMetric(frames/float64(b.N), "frames/op")
		})
	}
}
