package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Placement is a routing override: the session lives on Owner, wherever
// the ring would put it. A migration installs one at the ownership flip
// and broadcasts it; routing prefers a live placement owner over the
// ring chain. Pinned placements (operator migrations to an explicit
// off-ring target) survive rebalances; unpinned ones exist to bridge
// the window between a migration and the membership flip that makes the
// ring agree with it, and get rewritten by the next rebalance.
type Placement struct {
	Session string `json:"session"`
	Owner   string `json:"owner"`
	Pinned  bool   `json:"pinned"`
}

func (n *Node) placementOf(id string) (Placement, bool) {
	n.placeMu.Lock()
	defer n.placeMu.Unlock()
	p, ok := n.placements[id]
	return p, ok
}

func (n *Node) setPlacement(p Placement) {
	n.placeMu.Lock()
	n.placements[p.Session] = p
	n.placeMu.Unlock()
}

func (n *Node) dropPlacement(id string) {
	n.placeMu.Lock()
	delete(n.placements, id)
	n.placeMu.Unlock()
}

func (n *Node) placementIDs() []string {
	n.placeMu.Lock()
	defer n.placeMu.Unlock()
	out := make([]string, 0, len(n.placements))
	for id := range n.placements {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// broadcastPlacement pushes a placement record (or, with del, its
// removal) to every current peer except self and except the session's
// new owner, which installed its own at handoff time. Best effort: a
// node that misses the push still reaches the session through the ring
// chain's forward path once the membership flip lands.
func (n *Node) broadcastPlacement(ctx context.Context, p Placement, del bool) {
	v := n.view()
	var body []byte
	method := http.MethodDelete
	if !del {
		method = http.MethodPost
		body = mustClusterJSON(p)
	}
	for _, id := range v.nodeIDs() {
		if id == n.cfg.ID || (!del && id == p.Owner) {
			continue
		}
		err := n.doAddr(ctx, method, v.peers[id], "/v1/cluster/placement/"+p.Session, "application/json", body, n.cfg.ShipTimeout)
		if !isStatusError(err) {
			n.Observe(id, err)
		}
	}
}

// handlePlacementPut is POST /v1/cluster/placement/{id}: a peer
// announcing a session's post-migration owner.
func (n *Node) handlePlacementPut(w http.ResponseWriter, r *http.Request) {
	var p Placement
	if err := decodeClusterJSON(r.Body, &p); err != nil {
		httpError(w, http.StatusBadRequest, "decode placement: %v", err)
		return
	}
	id := r.PathValue("id")
	if p.Session == "" {
		p.Session = id
	}
	if p.Session != id || p.Owner == "" {
		httpError(w, http.StatusBadRequest, "placement session/owner mismatch for %q", id)
		return
	}
	n.setPlacement(p)
	w.WriteHeader(http.StatusNoContent)
}

// handlePlacementDel is DELETE /v1/cluster/placement/{id}.
func (n *Node) handlePlacementDel(w http.ResponseWriter, r *http.Request) {
	n.dropPlacement(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// --- membership admin: join and leave ---

// joinRequest is the body of POST /v1/cluster/nodes/{id}.
type joinRequest struct {
	Addr string `json:"addr"`
}

// MembershipChange is the reply of a join or leave: the new view plus
// how many sessions the bounded-movement rebalance actually migrated.
type MembershipChange struct {
	Epoch  uint64   `json:"epoch"`
	Nodes  []string `json:"nodes"`
	Moved  int      `json:"moved"`
	Failed int      `json:"failed"`
}

// handleNodeJoin is POST /v1/cluster/nodes/{id}: add a node to the
// ring. The coordinator (whichever member received the call) pushes the
// proposed view to the joiner first, then asks every existing member to
// rebalance — migrating only the sessions whose owner changes under the
// new ring, the bounded fraction the ring's movement property promises
// — and only then flips the epoch everywhere. Ordering matters: while
// rebalancing runs, all routing still uses the old view, and every
// migrated session is reachable through its broadcast placement, so
// there is no window in which a session is addressed by a ring that
// doesn't know where it lives.
func (n *Node) handleNodeJoin(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req joinRequest
	if err := decodeClusterJSON(r.Body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decode join: %v", err)
		return
	}
	if !validNodeID(id) {
		httpError(w, http.StatusBadRequest, "invalid node ID %q: want 1-64 chars of [A-Za-z0-9._-]", id)
		return
	}
	if req.Addr == "" {
		httpError(w, http.StatusBadRequest, "join %q: missing addr", id)
		return
	}
	if !n.adminBusy.CompareAndSwap(false, true) {
		httpError(w, http.StatusConflict, "another membership operation is in progress")
		return
	}
	defer n.adminBusy.Store(false)

	ctx := r.Context()
	cur := n.view()
	if have, ok := cur.peers[id]; ok {
		if have == req.Addr {
			// Idempotent re-join: already a member at that address.
			writeClusterJSON(w, MembershipChange{Epoch: cur.epoch, Nodes: cur.nodeIDs()})
			return
		}
		httpError(w, http.StatusConflict, "node %q already a member at %s", id, have)
		return
	}

	proposed := cur.wire()
	proposed.Epoch++
	proposed.Peers[id] = req.Addr

	// The joiner must hold the new view before any session can migrate
	// to it: an unreachable or misconfigured joiner aborts the join
	// with the cluster unchanged.
	if err := n.doAddr(ctx, http.MethodPost, req.Addr, "/v1/cluster/membership", "application/json", mustClusterJSON(proposed), n.adminTimeout()); err != nil {
		httpError(w, http.StatusBadGateway, "push membership to joiner %s: %v", req.Addr, err)
		return
	}

	moved, failed := n.rebalanceAll(ctx, cur, proposed)

	if _, err := n.applyMembership(proposed); err != nil {
		httpError(w, http.StatusInternalServerError, "apply membership: %v", err)
		return
	}
	n.broadcastMembership(ctx)
	writeClusterJSON(w, MembershipChange{Epoch: proposed.Epoch, Nodes: n.view().nodeIDs(), Moved: moved, Failed: failed})
}

// handleNodeLeave is DELETE /v1/cluster/nodes/{id}: drain a node out of
// the ring. The leaving node first migrates every live session it owns
// to that session's owner under the proposed view (evacuate); only if
// that fully succeeds — or the node is already unreachable, in which
// case its sessions fail over through their replicas — does the
// membership flip. The departed node keeps serving as a pure forwarding
// front until shut down: its view no longer contains itself, so it owns
// nothing and proxies everything.
func (n *Node) handleNodeLeave(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !n.adminBusy.CompareAndSwap(false, true) {
		httpError(w, http.StatusConflict, "another membership operation is in progress")
		return
	}
	defer n.adminBusy.Store(false)

	ctx := r.Context()
	cur := n.view()
	addr, ok := cur.peers[id]
	if !ok {
		httpError(w, http.StatusNotFound, "node %q is not a member", id)
		return
	}
	if len(cur.peers) == 1 {
		httpError(w, http.StatusConflict, "cannot remove the last node %q", id)
		return
	}

	proposed := cur.wire()
	proposed.Epoch++
	delete(proposed.Peers, id)

	moved, failed := 0, 0
	if id == n.cfg.ID {
		moved, failed = n.evacuateLocal(ctx, proposed)
		if failed > 0 {
			httpError(w, http.StatusConflict, "evacuate %s: %d of %d sessions failed to migrate; node stays", id, failed, failed+moved)
			return
		}
	} else if n.alive(id) {
		var rep MembershipChange
		err := n.doAddrJSON(ctx, http.MethodPost, addr, "/v1/cluster/evacuate", mustClusterJSON(proposed), n.adminTimeout(), &rep)
		switch {
		case err == nil:
			moved, failed = rep.Moved, rep.Failed
		case isStatusError(err):
			// The node is alive but could not empty itself; removing it
			// anyway would strand live sessions. Abort.
			httpError(w, http.StatusConflict, "evacuate %s: %v; node stays", id, err)
			return
		default:
			// Unreachable: treat as dead. Its sessions fail over through
			// their replicas once routing stops listing it.
			n.Observe(id, err)
		}
	}

	if _, err := n.applyMembership(proposed); err != nil {
		httpError(w, http.StatusInternalServerError, "apply membership: %v", err)
		return
	}
	n.broadcastMembership(ctx)
	// Tell the departed node too (it is no longer in the view, so the
	// broadcast skipped it): with a view that excludes itself it owns
	// nothing and degrades to a forwarding front.
	if id != n.cfg.ID {
		// Best effort: a dead or partitioned node converges via
		// anti-entropy if it returns.
		_ = n.doAddr(ctx, http.MethodPost, addr, "/v1/cluster/membership", "application/json", mustClusterJSON(proposed), n.cfg.ShipTimeout)
	}
	writeClusterJSON(w, MembershipChange{Epoch: proposed.Epoch, Nodes: n.view().nodeIDs(), Moved: moved, Failed: failed})
}

// rebalanceAll runs the pre-flip rebalance for a join: every member of
// the old view — this node inline, the rest over RPC — migrates the
// live sessions whose owner changes under the proposed ring. A member
// that cannot be reached is skipped: its sessions keep serving where
// they are and move on a later rebalance or fail over if it dies.
func (n *Node) rebalanceAll(ctx context.Context, cur *membership, proposed Membership) (moved, failed int) {
	body := mustClusterJSON(proposed)
	for _, member := range cur.nodeIDs() {
		if member == n.cfg.ID {
			mv, fl := n.rebalanceLocal(ctx, proposed)
			moved, failed = moved+mv, failed+fl
			continue
		}
		if !n.alive(member) {
			continue
		}
		var rep MembershipChange
		err := n.doAddrJSON(ctx, http.MethodPost, cur.peers[member], "/v1/cluster/rebalance", body, n.adminTimeout(), &rep)
		if err != nil {
			if !isStatusError(err) {
				n.Observe(member, err)
			}
			failed++
			continue
		}
		moved, failed = moved+rep.Moved, failed+rep.Failed
	}
	return moved, failed
}

// handleRebalance is POST /v1/cluster/rebalance (internal): the join
// coordinator asking this node to migrate away the live sessions whose
// owner changes under the proposed view.
func (n *Node) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var proposed Membership
	if err := decodeClusterJSON(r.Body, &proposed); err != nil {
		httpError(w, http.StatusBadRequest, "decode membership: %v", err)
		return
	}
	moved, failed := n.rebalanceLocal(r.Context(), proposed)
	writeClusterJSON(w, MembershipChange{Epoch: proposed.Epoch, Moved: moved, Failed: failed})
}

// rebalanceLocal migrates every live local session whose owner under
// the proposed view is a different, reachable node. Pinned placements
// stay put — the operator chose their home explicitly. A failed
// migration leaves the session serving here under a self-placement, so
// post-flip routing still finds it.
func (n *Node) rebalanceLocal(ctx context.Context, proposed Membership) (moved, failed int) {
	next, err := newMembership(proposed, n.cfg.VNodes)
	if err != nil {
		return 0, 0
	}
	for _, id := range n.srv.LiveSessionIDs(ctx) {
		if p, ok := n.placementOf(id); ok && p.Pinned && p.Owner == n.cfg.ID {
			continue
		}
		target := next.ring.Owner(id)
		if target == n.cfg.ID {
			continue
		}
		if target != n.cfg.ID && !n.alive(target) {
			continue // owner-to-be is down; keep serving here
		}
		if err := n.migrateSessionTo(ctx, id, target, next.peers[target], false); err != nil {
			failed++
			p := Placement{Session: id, Owner: n.cfg.ID}
			n.setPlacement(p)
			n.broadcastPlacement(ctx, p, false)
			continue
		}
		moved++
	}
	return moved, failed
}

// handleEvacuate is POST /v1/cluster/evacuate (internal): the leave
// coordinator asking this node to migrate away every live session it
// holds, targeting each session's owner under the proposed view (which
// no longer contains this node).
func (n *Node) handleEvacuate(w http.ResponseWriter, r *http.Request) {
	var proposed Membership
	if err := decodeClusterJSON(r.Body, &proposed); err != nil {
		httpError(w, http.StatusBadRequest, "decode membership: %v", err)
		return
	}
	moved, failed := n.evacuateLocal(r.Context(), proposed)
	if failed > 0 {
		httpError(w, http.StatusConflict, "evacuate: %d of %d sessions failed to migrate", failed, failed+moved)
		return
	}
	writeClusterJSON(w, MembershipChange{Epoch: proposed.Epoch, Moved: moved})
}

// evacuateLocal migrates every live local session to its owner under
// the proposed view. Drained tombstones are not migrated: their final
// results stay readable on this node until it shuts down (documented
// limitation — export traces before retiring a node).
func (n *Node) evacuateLocal(ctx context.Context, proposed Membership) (moved, failed int) {
	next, err := newMembership(proposed, n.cfg.VNodes)
	if err != nil {
		return 0, 0
	}
	for _, id := range n.srv.LiveSessionIDs(ctx) {
		target := next.ring.Owner(id)
		if target == n.cfg.ID || !n.alive(target) {
			failed++
			continue
		}
		if err := n.migrateSessionTo(ctx, id, target, next.peers[target], false); err != nil {
			failed++
			continue
		}
		moved++
	}
	return moved, failed
}

// adminTimeout bounds coordinator-side admin RPCs (rebalance, evacuate,
// migrate proxy): they fan out into per-session migrations, so they get
// several ship budgets.
func (n *Node) adminTimeout() time.Duration { return 6 * n.cfg.ShipTimeout }

// --- small JSON plumbing shared by the cluster planes ---

func decodeClusterJSON(body io.Reader, dst any) error {
	dec := json.NewDecoder(io.LimitReader(body, maxReplicaBody))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

func mustClusterJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Only reachable with an unmarshalable type — a programming
		// error, not an input error.
		panic(fmt.Sprintf("cluster: marshal %T: %v", v, err))
	}
	return b
}
