package cluster

import (
	"net/http"
	"time"
)

// newClusterTransport builds the one tuned http.Transport every
// cluster-plane client on this node shares: replication frames,
// request forwards and health probes all draw from a single keep-alive
// pool per peer, so the steady state is a handful of long-lived
// connections per peer instead of a dial per ship. The idle caps are
// sized for a small cluster (every node talks to every peer): the
// per-host cap must exceed the ship window plus concurrent forwards,
// or the pool itself would close and re-dial connections under load.
func newClusterTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 32
	t.IdleConnTimeout = 90 * time.Second
	return t
}
