package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"

	"dvfsched/internal/server"
)

// Membership is the wire form of one cluster view: a monotonically
// increasing epoch plus the full node ID -> base URL map. Views are
// immutable values — a join or leave never edits a view in place, it
// proposes a whole new one at epoch+1, so two nodes holding the same
// epoch hold byte-identical peer maps and therefore identical rings.
type Membership struct {
	Epoch uint64            `json:"epoch"`
	Peers map[string]string `json:"peers"`
}

// membership is the resolved in-memory form of one epoch: the peer map
// plus the consistent-hash ring built from it. Node holds the current
// one behind an atomic pointer; readers (routing, replication target
// selection, the prober) load it once per operation and see a
// consistent epoch/peers/ring triple even while an admin operation
// installs the next view.
type membership struct {
	epoch uint64
	peers map[string]string
	ring  *Ring
}

// newMembership validates and resolves a wire view.
func newMembership(m Membership, vnodes int) (*membership, error) {
	if len(m.Peers) == 0 {
		return nil, fmt.Errorf("cluster: membership epoch %d has no peers", m.Epoch)
	}
	ids := make([]string, 0, len(m.Peers))
	for id, addr := range m.Peers {
		if !validNodeID(id) {
			return nil, fmt.Errorf("cluster: invalid node ID %q: want 1-64 chars of [A-Za-z0-9._-]", id)
		}
		if addr == "" {
			return nil, fmt.Errorf("cluster: peer %q has no address", id)
		}
		ids = append(ids, id)
	}
	ring, err := NewRing(ids, vnodes)
	if err != nil {
		return nil, err
	}
	peers := make(map[string]string, len(m.Peers))
	for id, addr := range m.Peers {
		peers[id] = addr
	}
	return &membership{epoch: m.Epoch, peers: peers, ring: ring}, nil
}

// wire converts back to the broadcastable form.
func (m *membership) wire() Membership {
	peers := make(map[string]string, len(m.peers))
	for id, addr := range m.peers {
		peers[id] = addr
	}
	return Membership{Epoch: m.epoch, Peers: peers}
}

// nodeIDs returns the view's members, sorted.
func (m *membership) nodeIDs() []string {
	ids := make([]string, 0, len(m.peers))
	for id := range m.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// validNodeID mirrors the session-ID alphabet: node IDs are embedded
// in minted session IDs and URL paths, so they share its constraints.
func validNodeID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// view returns the node's current membership snapshot.
func (n *Node) view() *membership { return n.membership.Load() }

// Epoch implements server.Cluster: the current membership epoch,
// stamped on forwarded requests so a node holding an older view learns
// it is stale and pulls the newer one (maybeSyncMembership).
func (n *Node) Epoch() uint64 { return n.view().epoch }

// applyMembership installs a strictly newer view. Older or equal
// epochs are ignored (not an error: broadcasts and anti-entropy race
// benignly). Liveness state for departed peers is pruned so the
// peers_down gauge doesn't count nodes that are no longer members.
func (n *Node) applyMembership(m Membership) (bool, error) {
	next, err := newMembership(m, n.cfg.VNodes)
	if err != nil {
		return false, err
	}
	n.viewMu.Lock()
	cur := n.membership.Load()
	if next.epoch <= cur.epoch {
		n.viewMu.Unlock()
		return false, nil
	}
	n.membership.Store(next)
	n.epochGauge.Set(float64(next.epoch))
	n.viewMu.Unlock()

	n.mu.Lock()
	for id := range n.down {
		if _, ok := next.peers[id]; !ok {
			delete(n.down, id)
		}
	}
	n.peersDown.Set(float64(len(n.down)))
	n.mu.Unlock()
	n.membershipSyncs.Inc()
	n.rehomeReplicas()
	return true, nil
}

// rehomeReplicas re-ships every locally owned session's replica after
// an epoch flip. Replicate already chases the ring — it re-opens and
// re-ships in full when the session's first chain candidate changes —
// but only on the session's next mutation. A session that goes quiet
// across a membership change would otherwise keep its only replica on
// a node the new ring never routes to (worst case: one that just left
// the ring), voiding the "acked implies replicated" durability promise
// for exactly the sessions a later failover must rebuild. Shipping here
// is synchronous: the membership push that triggered the flip does not
// ack before this node's sessions are re-covered, so an admin join or
// leave returns with replicas already tracking the new chain. Failures
// are best-effort — a failed ship degrades to the pre-existing
// next-mutation retry.
func (n *Node) rehomeReplicas() {
	ctx, cancel := context.WithTimeout(context.Background(), n.adminTimeout())
	defer cancel()
	for _, id := range n.srv.LiveSessionIDs(ctx) {
		_ = n.Replicate(ctx, id, server.MutationCreate)
	}
}

// --- membership HTTP endpoints ---

// handleMembershipGet is GET /v1/cluster/membership: the node's
// current view, used by joiners and by epoch-triggered anti-entropy.
func (n *Node) handleMembershipGet(w http.ResponseWriter, r *http.Request) {
	writeClusterJSON(w, n.view().wire())
}

// handleMembershipPost is POST /v1/cluster/membership: a peer pushing
// a (possibly newer) view at us. The reply is always our current view
// after the merge, so push doubles as a two-way sync.
func (n *Node) handleMembershipPost(w http.ResponseWriter, r *http.Request) {
	var m Membership
	if err := decodeClusterJSON(r.Body, &m); err != nil {
		httpError(w, http.StatusBadRequest, "decode membership: %v", err)
		return
	}
	if _, err := n.applyMembership(m); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeClusterJSON(w, n.view().wire())
}

// maybeSyncMembership reacts to a forwarded request stamped with a
// newer epoch than ours: pull the sender's view in the background,
// single-flight. senderAddr comes from the request header, not the
// peer map — the whole point is that our map may not know the sender
// yet.
func (n *Node) maybeSyncMembership(remoteEpoch uint64, senderAddr string) {
	if senderAddr == "" || remoteEpoch <= n.Epoch() {
		return
	}
	if !n.syncing.CompareAndSwap(false, true) {
		return
	}
	//dvfslint:allow goroleak one-shot bounded pull: pullMembership runs under a ShipTimeout context deadline, so the goroutine exits within one timeout
	go func() {
		defer n.syncing.Store(false)
		n.pullMembership(senderAddr)
	}()
}

// pullMembership fetches a peer's view by address and applies it.
func (n *Node) pullMembership(addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ShipTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/cluster/membership", nil)
	if err != nil {
		return
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var m Membership
	if err := decodeClusterJSON(resp.Body, &m); err != nil {
		return
	}
	// Anti-entropy is best effort; a bad view is ignored and retried on
	// the next stale forward.
	_, _ = n.applyMembership(m)
}

// broadcastMembership pushes the current view to every peer except
// self, best effort: a peer that misses the push converges through
// anti-entropy the next time a stamped forward reaches it.
func (n *Node) broadcastMembership(ctx context.Context) {
	v := n.view()
	body := mustClusterJSON(v.wire())
	for _, id := range v.nodeIDs() {
		if id == n.cfg.ID {
			continue
		}
		err := n.doAddr(ctx, http.MethodPost, v.peers[id], "/v1/cluster/membership", "application/json", body, n.cfg.ShipTimeout)
		if !isStatusError(err) {
			n.Observe(id, err)
		}
	}
}

// epochAware wraps the node's HTTP surface: every request stamped by a
// router with a newer epoch triggers an async membership pull before
// being served, so a node that missed a broadcast converges on first
// contact instead of routing on a stale ring indefinitely.
func (n *Node) epochAware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if eh := r.Header.Get(server.EpochHeader); eh != "" {
			var remote uint64
			if _, err := fmt.Sscanf(eh, "%d", &remote); err == nil {
				n.maybeSyncMembership(remote, r.Header.Get(server.SenderAddrHeader))
			}
		}
		next.ServeHTTP(w, r)
	})
}
