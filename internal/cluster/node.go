package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvfsched/internal/obs"
	"dvfsched/internal/server"
)

// maxReplicaBody bounds internal replication request bodies; matches
// the public API's cap.
const maxReplicaBody = 64 << 20

// Config wires a Node.
type Config struct {
	// ID is this node's name; must be a key of Peers and consist of
	// [A-Za-z0-9._-] (it is embedded in minted session IDs).
	ID string
	// Peers maps node ID -> base URL (http://host:port) for the seed
	// membership, including this node. It is only the epoch-1 view:
	// joins and leaves (POST/DELETE /v1/cluster/nodes/{id}) replace the
	// membership at runtime.
	Peers map[string]string
	// VNodes is the ring's virtual-node count per peer (0 =
	// DefaultVNodes).
	VNodes int
	// CheckpointEvery ships a fresh checkpoint to the replica once
	// this many log events accumulated since the last one (0 = 256).
	// Smaller means faster promotion replay, more snapshot traffic.
	CheckpointEvery int
	// ShipTimeout bounds each replication RPC (0 = 5s).
	ShipTimeout time.Duration
	// ShipWindow bounds in-flight replication frames per peer stream
	// (0 = DefaultShipWindow). Negative selects the synchronous
	// per-mutation ship path — the pre-stream baseline, kept for
	// benchmarking and emergency rollback.
	ShipWindow int
	// ShipFlushInterval makes a woken shipper linger this long before
	// building a frame, trading ack latency for larger coalesced
	// frames (0 = ship immediately; pipelining already coalesces
	// whatever commits while the previous frame is on the wire).
	ShipFlushInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 256
	}
	if c.ShipTimeout == 0 {
		c.ShipTimeout = 5 * time.Second
	}
	if c.ShipWindow == 0 {
		c.ShipWindow = DefaultShipWindow
	}
	return c
}

// Node is one cluster member: it fronts a server.Server through a
// server.Router (any node serves any session), owns the sessions the
// ring places on it, replicates them to the next live node, and holds
// cold replica state for sessions owned elsewhere, promoting them when
// their owner dies. Safe for concurrent use by the HTTP stack.
type Node struct {
	cfg     Config
	srv     *server.Server
	router  *server.Router
	handler http.Handler
	client  *http.Client

	// membership is the current epoch'd view (peers + ring), swapped
	// atomically by joins/leaves; viewMu serializes the writers.
	membership atomic.Pointer[membership]
	viewMu     sync.Mutex

	// placeMu guards placements, the per-session routing overrides
	// installed by migrations (admin.go).
	placeMu    sync.Mutex
	placements map[string]Placement

	// migrating serializes migrations per session; adminBusy serializes
	// whole-membership operations (join/leave) on this coordinator.
	migrating sessionGuard
	adminBusy atomic.Bool
	// syncing single-flights the epoch-triggered anti-entropy pull.
	syncing atomic.Bool

	// mu guards down, the liveness view. Peers are marked down by
	// failed forwards/ships (or the background prober) and up again by
	// any successful exchange.
	mu   sync.Mutex
	down map[string]bool

	replicas replicaStore

	// shipsMu guards the whole streaming plane: ships (per-owned-
	// session replication cursors), the per-peer shippers with their
	// queues and in-flight counts, and the closed flag. In the legacy
	// synchronous mode (ShipWindow < 0) it only guards the serialShips
	// map. Never held across I/O; channel sends to released waiters
	// happen after unlock (collected as shipRelease values).
	shipsMu     sync.Mutex
	ships       map[string]*shipCursor
	shippers    map[string]*shipper
	shipsClosed bool
	shipWG      sync.WaitGroup
	serialShips map[string]*shipState

	seq atomic.Uint64

	shipsTotal      *obs.Counter
	promotions      *obs.Counter
	peersDown       *obs.Gauge
	epochGauge      *obs.Gauge
	migrations      *obs.Counter
	membershipSyncs *obs.Counter
	shipFrames      *obs.Counter
	shipHeals       *obs.Counter
	shipInflight    *obs.Gauge
	frameSessions   *obs.Histogram
	frameEvents     *obs.Histogram
	shipAckWait     *obs.Histogram
}

// NewNode builds a node over its server. The server must be fronted
// exclusively through Node.Handler — bypassing the router would serve
// sessions without placement or replication.
func NewNode(cfg Config, srv *server.Server) (*Node, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("cluster: node ID %q is not in the peer list %v", cfg.ID, ids)
	}
	seed, err := newMembership(Membership{Epoch: 1, Peers: cfg.Peers}, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	reg := srv.Registry()
	transport := newClusterTransport()
	n := &Node{
		cfg: cfg,
		srv: srv,
		// No client-level timeout: every call site bounds itself with a
		// context deadline (ShipTimeout for replication, adminTimeout
		// for fan-out admin RPCs). The transport is the node-wide tuned
		// keep-alive pool, shared with the router's forwards below.
		client:          &http.Client{Transport: transport},
		placements:      map[string]Placement{},
		migrating:       sessionGuard{m: map[string]bool{}},
		down:            map[string]bool{},
		replicas:        replicaStore{m: map[string]*replica{}},
		ships:           map[string]*shipCursor{},
		shippers:        map[string]*shipper{},
		serialShips:     map[string]*shipState{},
		shipsTotal:      reg.Counter(obs.ClusterShips),
		promotions:      reg.Counter(obs.ClusterPromotions),
		peersDown:       reg.Gauge(obs.ClusterPeersDown),
		epochGauge:      reg.Gauge(obs.ClusterEpoch),
		migrations:      reg.Counter(obs.ClusterMigrations),
		membershipSyncs: reg.Counter(obs.ClusterMembershipSyncs),
		shipFrames:      reg.Counter(obs.ClusterShipFrames),
		shipHeals:       reg.Counter(obs.ClusterShipHeals),
		shipInflight:    reg.Gauge(obs.ClusterShipInflight),
		frameSessions:   reg.Histogram(obs.ClusterShipFrameSessions, obs.ExpBuckets(1, 2, 10)),
		frameEvents:     reg.Histogram(obs.ClusterShipFrameEvents, obs.ExpBuckets(1, 4, 10)),
		shipAckWait:     reg.Histogram(obs.ClusterShipAckWait, obs.ExpBuckets(1e-4, 4, 10)),
	}
	n.membership.Store(seed)
	n.epochGauge.Set(1)
	n.router = server.NewRouter(srv, n)
	n.router.SetTransport(transport)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/replica/frame", n.handleReplicaFrame)
	mux.HandleFunc("POST /v1/cluster/replica/{id}/open", n.handleReplicaOpen)
	mux.HandleFunc("POST /v1/cluster/replica/{id}/log", n.handleReplicaLog)
	mux.HandleFunc("POST /v1/cluster/replica/{id}/checkpoint", n.handleReplicaCheckpoint)
	mux.HandleFunc("POST /v1/cluster/replica/{id}/drop", n.handleReplicaDrop)
	mux.HandleFunc("GET /v1/cluster/membership", n.handleMembershipGet)
	mux.HandleFunc("POST /v1/cluster/membership", n.handleMembershipPost)
	mux.HandleFunc("POST /v1/cluster/nodes/{id}", n.handleNodeJoin)
	mux.HandleFunc("DELETE /v1/cluster/nodes/{id}", n.handleNodeLeave)
	mux.HandleFunc("POST /v1/cluster/sessions/{id}/migrate", n.handleMigrate)
	mux.HandleFunc("POST /v1/cluster/handoff/{id}", n.handleHandoff)
	mux.HandleFunc("POST /v1/cluster/rebalance", n.handleRebalance)
	mux.HandleFunc("POST /v1/cluster/evacuate", n.handleEvacuate)
	mux.HandleFunc("POST /v1/cluster/placement/{id}", n.handlePlacementPut)
	mux.HandleFunc("DELETE /v1/cluster/placement/{id}", n.handlePlacementDel)
	mux.HandleFunc("GET /v1/cluster/route", n.handleRoute)
	mux.HandleFunc("GET /v1/cluster/info", n.handleInfo)
	mux.Handle("/", n.router)
	n.handler = n.epochAware(mux)
	return n, nil
}

// Handler returns the node's HTTP surface: the public scheduler API
// routed by session placement, plus the internal /v1/cluster/*
// replication endpoints.
func (n *Node) Handler() http.Handler { return n.handler }

// Self implements server.Cluster.
func (n *Node) Self() string { return n.cfg.ID }

// Addr implements server.Cluster, resolving against the current view.
func (n *Node) Addr(node string) string { return n.view().peers[node] }

// Route implements server.Cluster: the session's full live failover
// chain, owner first. A live placement owner (a migrated session's
// home) outranks the ring; the ring chain follows as failover, because
// that is where the placement owner ships its replicas.
func (n *Node) Route(sessionID string) []string {
	v := n.view()
	cands := v.ring.Candidates(sessionID, len(v.peers), n.alive)
	p, ok := n.placementOf(sessionID)
	if !ok || p.Owner == "" {
		return cands
	}
	if _, member := v.peers[p.Owner]; !member || !n.alive(p.Owner) {
		// The placed owner is gone; fall back to the ring chain, where
		// its replica lives and promotes lazily.
		return cands
	}
	out := make([]string, 0, len(cands)+1)
	out = append(out, p.Owner)
	for _, c := range cands {
		if c != p.Owner {
			out = append(out, c)
		}
	}
	return out
}

// NewSessionID implements server.Cluster. IDs carry the minting node
// and a local counter, so concurrent fronts never collide.
func (n *Node) NewSessionID() string {
	return fmt.Sprintf("s-%s-%06d", n.cfg.ID, n.seq.Add(1))
}

// Observe implements server.Cluster: transport failures mark a peer
// down, successful exchanges mark it up.
func (n *Node) Observe(node string, err error) {
	if node == n.cfg.ID {
		return
	}
	if _, ok := n.view().peers[node]; !ok {
		return
	}
	n.mu.Lock()
	if err != nil {
		n.down[node] = true
	} else {
		delete(n.down, node)
	}
	n.peersDown.Set(float64(len(n.down)))
	n.mu.Unlock()
}

func (n *Node) alive(node string) bool {
	if node == n.cfg.ID {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.down[node]
}

// StartProber launches a background goroutine probing every peer's
// /healthz each interval, so dead peers are discovered (and revived
// peers welcomed back) without waiting for a request to fail against
// them. The returned stop function blocks until the prober exits.
func (n *Node) StartProber(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				n.probeOnce(interval)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

func (n *Node) probeOnce(timeout time.Duration) {
	// The prober follows the current view each tick, so members that
	// joined after boot are probed and departed ones are not.
	v := n.view()
	for _, id := range v.nodeIDs() {
		if id == n.cfg.ID {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, v.peers[id]+"/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := n.client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		n.Observe(id, err)
	}
}

// EnsureLocal implements server.Cluster: the promotion path. If this
// node holds replica state for id but no live shard, the session is
// rebuilt (checkpoint restore + log suffix replay) and adopted; the
// next Replicate call re-ships the full log to a new replica.
//
// The migration fence lives here too: while a placement names another
// live node as the session's owner, this node must neither serve nor
// promote it — a request that raced past the ownership flip gets a
// retryable ErrSessionMoved instead of resurrecting pre-migration
// state (split brain). Only when the placed owner is dead does the
// normal lazy promotion take over, returning the session to the ring.
func (n *Node) EnsureLocal(ctx context.Context, id string) error {
	if p, ok := n.placementOf(id); ok && p.Owner != n.cfg.ID && n.alive(p.Owner) {
		if _, member := n.view().peers[p.Owner]; member {
			return fmt.Errorf("cluster: %w: session %s is on %s", server.ErrSessionMoved, id, p.Owner)
		}
	}
	// The moved marker is the second fence, and the only one that holds
	// on the node that migrated the session away itself. During a join,
	// the old owner hands sessions to the joiner BEFORE the epoch flips,
	// so for a moment its view does not contain the new owner at all:
	// the placement fence above cannot see it (not a member), old-ring
	// routing still points here, and the new owner's first replication
	// ship may already have deposited a replica of the session on this
	// node. Promoting that replica would fork acknowledged state. Refuse
	// unless the moved-target is a member this node has observed down —
	// the one case where promotion is genuine failover.
	if target, ok := n.srv.SessionMovedTo(id); ok && target != n.cfg.ID {
		if _, member := n.view().peers[target]; !member || n.alive(target) {
			return fmt.Errorf("cluster: %w: session %s is on %s", server.ErrSessionMoved, id, target)
		}
	}
	if n.srv.HasSession(id) {
		return nil
	}
	rep, ok := n.replicas.get(id)
	if !ok {
		return nil // no state here: the operation sees the local 404
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if n.srv.HasSession(id) {
		return nil // lost the promotion race; the winner's shard serves
	}
	if _, err := n.srv.AdoptSession(ctx, id, rep.spec, rep.checkpoint, rep.log.snapshot()); err != nil {
		return fmt.Errorf("cluster: promote session %s: %w", id, err)
	}
	n.promotions.Inc()
	// Promotion returns the session to ring placement: a stale
	// placement record pointing at the dead owner must not outrank us.
	n.dropPlacement(id)
	// The shard's recorder now carries the full trace; the replica
	// copy is dead weight.
	n.replicas.drop(id)
	return nil
}

// shipState is the replication cursor of one locally owned session on
// the legacy synchronous path (ShipWindow < 0): one HTTP POST per
// mutation, serialized per session by st.mu. It is kept as the
// benchmark baseline the stream is measured against and as an
// emergency rollback; the streaming cursors live in shipper.go.
type shipState struct {
	mu      sync.Mutex
	target  string // replica node ID; "" when none is live
	opened  bool   // replica acknowledged the open
	shipped uint64 // last event Seq the replica's log covers
	sinceCP int    // events shipped since the last checkpoint
}

func (n *Node) shipFor(id string) *shipState {
	n.shipsMu.Lock()
	defer n.shipsMu.Unlock()
	st, ok := n.serialShips[id]
	if !ok {
		st = &shipState{}
		n.serialShips[id] = st
	}
	return st
}

func (n *Node) dropShip(id string) {
	n.shipsMu.Lock()
	delete(n.serialShips, id)
	n.shipsMu.Unlock()
}

// replicaTarget picks the session's replica: the first live candidate
// on the ring that is not this node. "" means the cluster has no other
// live node and the session runs unreplicated until one returns.
func (n *Node) replicaTarget(id string) string {
	for _, cand := range n.Route(id) {
		if cand != n.cfg.ID {
			return cand
		}
	}
	return ""
}

// Replicate implements server.Cluster: bring the session's replica up
// to date with the local recorder before the mutation's response is
// released — for submits the router fails the request if this fails,
// which is what makes "acked implies replicated" (and therefore
// kill-tolerance) hold. On the default streamed path the call blocks
// on the per-peer stream's ack covering the session's current log
// tail (shipper.go); with ShipWindow < 0 it ships synchronously, one
// POST per mutation. Either way the completion guarantee is the same,
// which is what rehomeReplicas and the handoff path rely on.
func (n *Node) Replicate(ctx context.Context, id string, m server.Mutation) error {
	if len(n.view().peers) == 1 {
		return nil // solo "cluster": nothing to replicate to
	}
	if n.cfg.ShipWindow >= 0 {
		return n.replicateStream(ctx, id, m)
	}
	return n.replicateSerial(ctx, id, m)
}

// replicateSerial is the per-request baseline: synchronously ship the
// unshipped log tail within this call. If the current replica died,
// the next live candidate is adopted and the full log re-shipped once.
func (n *Node) replicateSerial(ctx context.Context, id string, m server.Mutation) error {
	st := n.shipFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()

	if m == server.MutationPurge {
		target := st.target
		st.target, st.opened, st.shipped, st.sinceCP = "", false, 0, 0
		n.dropShip(id)
		if target != "" {
			// Best effort: a leaked tombstone on the replica is dropped
			// the next time the session ID is reused or the node
			// restarts.
			_ = n.post(ctx, target, "/v1/cluster/replica/"+id+"/drop", "", nil)
		}
		return nil
	}

	target := n.replicaTarget(id)
	if target == "" {
		return nil // degrade: no live replica candidate
	}
	if target != st.target {
		st.target, st.opened, st.shipped, st.sinceCP = target, false, 0, 0
	}
	err := n.shipLocked(ctx, id, st, m)
	if err == nil {
		n.shipsTotal.Inc()
		return nil
	}
	if !isStatusError(err) {
		// Transport failure: the replica is gone. Mark it down, adopt
		// the next candidate and re-ship the full log, once.
		n.Observe(st.target, err)
		next := n.replicaTarget(id)
		if next == "" {
			return nil // degrade: last other node just died
		}
		if next != st.target {
			st.target, st.opened, st.shipped, st.sinceCP = next, false, 0, 0
			if retryErr := n.shipLocked(ctx, id, st, m); retryErr == nil {
				n.shipsTotal.Inc()
				return nil
			}
		}
	}
	return fmt.Errorf("cluster: replicate session %s to %s: %w", id, st.target, err)
}

// openReplica (re)announces the session to st.target's replica store
// and marks the cursor open. Opens are idempotent: an existing replica
// keeps its log and only refreshes the spec.
func (n *Node) openReplica(ctx context.Context, id string, st *shipState) error {
	spec, ok := n.srv.SessionSpec(id)
	if !ok {
		return fmt.Errorf("session %s vanished mid-ship", id)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	if err := n.post(ctx, st.target, "/v1/cluster/replica/"+id+"/open", "application/json", body); err != nil {
		return err
	}
	st.opened = true
	return nil
}

// shipLocked pushes the unshipped log tail (and, when due, a fresh
// checkpoint) to st.target. Caller holds st.mu. The order is
// snapshot-then-events-then-checkpoint: the snapshot is taken first so
// the events shipped alongside are guaranteed to cover its sequence
// number — the replica rejects a checkpoint ahead of its log, which
// would leave a trace gap at promotion.
func (n *Node) shipLocked(ctx context.Context, id string, st *shipState, m server.Mutation) error {
	var checkpoint []byte
	if m == server.MutationSubmit && st.sinceCP >= n.cfg.CheckpointEvery {
		blob, err := n.srv.SnapshotSession(ctx, id)
		if err == nil {
			checkpoint = blob
		}
		// A failed snapshot (busy shard, drained session) skips this
		// round's checkpoint; the log alone still makes the replica
		// complete, just slower to promote.
	}
	events, err := n.srv.SessionEventsSince(id, st.shipped)
	if err != nil {
		return err
	}
	if !st.opened {
		if err := n.openReplica(ctx, id, st); err != nil {
			return err
		}
	}
	if len(events) > 0 {
		err := n.post(ctx, st.target, "/v1/cluster/replica/"+id+"/log", "application/octet-stream", obs.AppendBinary(nil, events))
		if isStatusError(err) {
			// The replica lost state we thought it had: it found a log
			// gap (409 — it restarted and kept nothing), or the replica
			// itself is gone (404 — dropped out from under an open ship
			// cursor, e.g. by an old owner's post-migration cleanup
			// racing the new owner's first ship after a handoff). Both
			// heal the same way: re-open — idempotent, an existing
			// replica keeps its log — and re-ship the full log once;
			// the replica skips duplicates below its tail.
			st.opened, st.shipped = false, 0
			full, ferr := n.srv.SessionEventsSince(id, 0)
			if ferr != nil {
				return ferr
			}
			if err = n.openReplica(ctx, id, st); err == nil {
				err = n.post(ctx, st.target, "/v1/cluster/replica/"+id+"/log", "application/octet-stream", obs.AppendBinary(nil, full))
				events = full
			}
		}
		if err != nil {
			return err
		}
		st.shipped = events[len(events)-1].Seq
		st.sinceCP += len(events)
	}
	if len(checkpoint) > 0 {
		if err := n.post(ctx, st.target, "/v1/cluster/replica/"+id+"/checkpoint", "application/octet-stream", checkpoint); err != nil {
			return err
		}
		st.sinceCP = 0
	}
	return nil
}

// statusError is a non-2xx reply from a replication endpoint — the
// peer is alive but refused, so it must not be marked down.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("status %d: %s", e.code, e.body)
}

func isStatusError(err error) bool {
	var se *statusError
	return errors.As(err, &se)
}

// post sends one replication RPC to a peer by node ID, resolving its
// address against the current view. It returns nil on 2xx, a
// *statusError on any other reply, and the raw transport error when
// the peer was unreachable. Any HTTP-level response (even an error
// status) marks the peer up: it is alive, just refusing.
func (n *Node) post(ctx context.Context, node, path, contentType string, body []byte) error {
	addr := n.Addr(node)
	if addr == "" {
		return &statusError{code: http.StatusGone, body: fmt.Sprintf("node %s is not in the current view", node)}
	}
	err := n.doAddr(ctx, http.MethodPost, addr, path, contentType, body, n.cfg.ShipTimeout)
	if err == nil || isStatusError(err) {
		n.Observe(node, nil)
	}
	return err
}

// doAddr sends one RPC to an explicit base URL (which need not be in
// the view yet — joiners aren't) and discards the reply body. Non-2xx
// replies become *statusError; transport failures pass through raw.
func (n *Node) doAddr(ctx context.Context, method, addr, path, contentType string, body []byte, timeout time.Duration) error {
	status, msg, err := n.roundTrip(ctx, method, addr, path, contentType, body, timeout)
	if err != nil {
		return err
	}
	if status < 200 || status >= 300 {
		if len(msg) > 1024 {
			msg = msg[:1024]
		}
		return &statusError{code: status, body: string(bytes.TrimSpace(msg))}
	}
	return nil
}

// doAddrJSON is doAddr plus decoding a 2xx reply body into out.
func (n *Node) doAddrJSON(ctx context.Context, method, addr, path string, body []byte, timeout time.Duration, out any) error {
	status, msg, err := n.roundTrip(ctx, method, addr, path, "application/json", body, timeout)
	if err != nil {
		return err
	}
	if status < 200 || status >= 300 {
		if len(msg) > 1024 {
			msg = msg[:1024]
		}
		return &statusError{code: status, body: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(msg, out); err != nil {
		return fmt.Errorf("decode reply from %s%s: %w", addr, path, err)
	}
	return nil
}

// roundTrip is the transport primitive under post/doAddr/doAddrJSON:
// one bounded request, whole reply body read. The context deadline is
// the only timeout — the shared client carries none, so admin RPCs
// (which fan out into per-session migrations) can run longer than one
// ship budget.
func (n *Node) roundTrip(ctx context.Context, method, addr, path, contentType string, body []byte, timeout time.Duration) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, addr+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxReplicaBody))
	return resp.StatusCode, msg, nil
}
