// Package speedscale implements the classical continuous-speed
// scaling algorithms the paper's related work builds on (Section VI
// cites Yao, Demers & Shenker and Bansal et al.): jobs with release
// times and deadlines on one processor whose power is s^alpha.
//
//   - YDS: the offline optimum, by repeatedly extracting the critical
//     interval of maximum intensity;
//   - AVR (average rate): each job contributes its density
//     w/(d-r) to the processor speed throughout its window;
//   - OA (optimal available): replans YDS over the remaining work at
//     every release.
//
// DiscretizeYDS bridges to the paper's discrete-rate world by
// rounding each critical interval's speed up to a hardware level.
package speedscale

import (
	"fmt"
	"math"
	"sort"

	"dvfsched/internal/model"
)

// Job is one deadline-constrained job: Work Gcycles available from
// Release and due by Deadline.
type Job struct {
	// ID identifies the job.
	ID int
	// Work is the demand in Gcycles.
	Work float64
	// Release and Deadline bound the window in seconds.
	Release, Deadline float64
}

// Validate checks the job definition.
func (j Job) Validate() error {
	if j.Work <= 0 || math.IsNaN(j.Work) || math.IsInf(j.Work, 0) {
		return fmt.Errorf("speedscale: job %d: work must be positive, got %v", j.ID, j.Work)
	}
	if j.Release < 0 || math.IsNaN(j.Release) {
		return fmt.Errorf("speedscale: job %d: bad release %v", j.ID, j.Release)
	}
	if j.Deadline <= j.Release || math.IsNaN(j.Deadline) || math.IsInf(j.Deadline, 0) {
		return fmt.Errorf("speedscale: job %d: deadline %v must exceed release %v", j.ID, j.Deadline, j.Release)
	}
	return nil
}

func validateJobs(jobs []Job) error {
	if len(jobs) == 0 {
		return fmt.Errorf("speedscale: no jobs")
	}
	seen := map[int]bool{}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("speedscale: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// Segment is a maximal original-time span during which the processor
// runs at a constant speed on a fixed job set.
type Segment struct {
	// Start and End bound the span in seconds.
	Start, End float64
	// Speed is the processing rate in Gcycles per second.
	Speed float64
}

// CriticalInterval is one extraction step of the YDS algorithm: a set
// of jobs executed at a common speed inside a set of original-time
// segments.
type CriticalInterval struct {
	// Speed is the interval's intensity, in Gcycles per second.
	Speed float64
	// Jobs lists the IDs scheduled in this interval.
	Jobs []int
	// Segments are the original-time spans the interval occupies
	// (later extractions may be split by earlier, denser ones).
	Segments []Segment
}

// Duration returns the interval's total length.
func (ci CriticalInterval) Duration() float64 {
	var d float64
	for _, s := range ci.Segments {
		d += s.End - s.Start
	}
	return d
}

// timeMap converts between collapsed and original coordinates as
// critical intervals are carved out of the timeline.
type timeMap struct {
	occupied []Segment // disjoint, sorted original-time spans
}

// toOriginal maps a collapsed instant to original time by skipping
// occupied spans.
func (tm *timeMap) toOriginal(t float64) float64 {
	orig := t
	for _, s := range tm.occupied {
		if s.Start <= orig+1e-12 {
			orig += s.End - s.Start
		} else {
			break
		}
	}
	return orig
}

// claim marks the collapsed span [a, b) occupied and returns its
// original-time segments.
func (tm *timeMap) claim(a, b float64) []Segment {
	var out []Segment
	remaining := b - a
	cur := tm.toOriginal(a)
	for remaining > 1e-12 {
		// Find the free stretch starting at cur.
		next := math.Inf(1)
		for _, s := range tm.occupied {
			if s.Start >= cur-1e-12 {
				next = s.Start
				break
			}
		}
		length := math.Min(remaining, next-cur)
		out = append(out, Segment{Start: cur, End: cur + length})
		remaining -= length
		cur = cur + length
		if remaining > 1e-12 {
			// Skip over the occupied span we ran into.
			for _, s := range tm.occupied {
				if math.Abs(s.Start-cur) < 1e-9 {
					cur = s.End
					break
				}
			}
		}
	}
	tm.occupied = append(tm.occupied, out...)
	sort.Slice(tm.occupied, func(i, j int) bool { return tm.occupied[i].Start < tm.occupied[j].Start })
	tm.occupied = mergeSegments(tm.occupied)
	return out
}

func mergeSegments(segs []Segment) []Segment {
	if len(segs) == 0 {
		return segs
	}
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End+1e-12 {
			if s.End > last.End {
				last.End = s.End
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// YDS computes the energy-optimal continuous-speed schedule by the
// critical-interval algorithm of Yao, Demers and Shenker. It returns
// the extracted intervals in decreasing speed order. O(n^3).
func YDS(jobs []Job) ([]CriticalInterval, error) {
	if err := validateJobs(jobs); err != nil {
		return nil, err
	}
	type wj struct {
		id      int
		work    float64
		rel, dl float64 // in current collapsed coordinates
	}
	pending := make([]wj, len(jobs))
	for i, j := range jobs {
		pending[i] = wj{id: j.ID, work: j.Work, rel: j.Release, dl: j.Deadline}
	}
	tm := &timeMap{}
	var out []CriticalInterval

	for len(pending) > 0 {
		// Candidate endpoints are the releases and deadlines.
		rels := make([]float64, 0, len(pending))
		dls := make([]float64, 0, len(pending))
		for _, j := range pending {
			rels = append(rels, j.rel)
			dls = append(dls, j.dl)
		}
		bestI, bestT1, bestT2 := -1.0, 0.0, 0.0
		for _, t1 := range rels {
			for _, t2 := range dls {
				if t2 <= t1 {
					continue
				}
				var work float64
				for _, j := range pending {
					if j.rel >= t1-1e-12 && j.dl <= t2+1e-12 {
						work += j.work
					}
				}
				if work == 0 {
					continue
				}
				if in := work / (t2 - t1); in > bestI+1e-15 {
					bestI, bestT1, bestT2 = in, t1, t2
				}
			}
		}
		if bestI <= 0 {
			return nil, fmt.Errorf("speedscale: internal error: no critical interval found")
		}

		ci := CriticalInterval{Speed: bestI}
		var rest []wj
		for _, j := range pending {
			if j.rel >= bestT1-1e-12 && j.dl <= bestT2+1e-12 {
				ci.Jobs = append(ci.Jobs, j.id)
			} else {
				rest = append(rest, j)
			}
		}
		sort.Ints(ci.Jobs)
		ci.Segments = tm.claim(bestT1, bestT2)
		out = append(out, ci)

		// Collapse [t1, t2] out of the timeline for the remaining
		// jobs.
		width := bestT2 - bestT1
		for i := range rest {
			rest[i].rel = collapse(rest[i].rel, bestT1, bestT2, width)
			rest[i].dl = collapse(rest[i].dl, bestT1, bestT2, width)
		}
		pending = rest
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Speed > out[j].Speed })
	return out, nil
}

func collapse(t, t1, t2, width float64) float64 {
	switch {
	case t <= t1:
		return t
	case t >= t2:
		return t - width
	default:
		return t1
	}
}

// Energy integrates s(t)^alpha over the schedule: the energy of the
// YDS plan under the classical power model, in (Gcyc/s)^alpha-second
// units.
func Energy(intervals []CriticalInterval, alpha float64) float64 {
	var e float64
	for _, ci := range intervals {
		e += math.Pow(ci.Speed, alpha) * ci.Duration()
	}
	return e
}

// MaxSpeed returns the plan's top speed (the first interval's, by
// construction).
func MaxSpeed(intervals []CriticalInterval) float64 {
	if len(intervals) == 0 {
		return 0
	}
	return intervals[0].Speed
}

// SpeedOf returns the speed assigned to a job ID, or 0 if absent.
func SpeedOf(intervals []CriticalInterval, id int) float64 {
	for _, ci := range intervals {
		for _, j := range ci.Jobs {
			if j == id {
				return ci.Speed
			}
		}
	}
	return 0
}

// DiscretizeYDS converts the continuous plan to the paper's discrete
// rate model: every job runs at the lowest hardware level whose rate
// (in Gcyc/s; rates in GHz equal Gcyc/s) is at least its YDS speed.
// It returns per-job assignments and their total energy in joules
// using the table's E(p), or an error if some speed exceeds the
// fastest level.
func DiscretizeYDS(jobs []Job, intervals []CriticalInterval, rates *model.RateTable) (map[int]model.RateLevel, float64, error) {
	if err := rates.Validate(); err != nil {
		return nil, 0, err
	}
	byID := map[int]Job{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	out := make(map[int]model.RateLevel, len(jobs))
	var joules float64
	for _, ci := range intervals {
		var level model.RateLevel
		found := false
		for i := 0; i < rates.Len(); i++ {
			if rates.Level(i).Rate >= ci.Speed-1e-9 {
				level = rates.Level(i)
				found = true
				break
			}
		}
		if !found {
			return nil, 0, fmt.Errorf("speedscale: YDS speed %.3f exceeds the fastest level %.3f",
				ci.Speed, rates.Max().Rate)
		}
		for _, id := range ci.Jobs {
			out[id] = level
			joules += model.TaskEnergy(byID[id].Work, level)
		}
	}
	return out, joules, nil
}
