package speedscale

import (
	"math"
	"sort"
)

// AVREnergy computes the energy of the Average Rate heuristic (Yao,
// Demers & Shenker's online algorithm): each job adds its density
// w/(d-r) to the processor speed throughout its window, and the
// processor runs at the densities' sum. AVR is
// 2^(alpha-1)*alpha^alpha-competitive against YDS.
func AVREnergy(jobs []Job, alpha float64) (float64, error) {
	if err := validateJobs(jobs); err != nil {
		return 0, err
	}
	// Event points: all releases and deadlines.
	points := make([]float64, 0, 2*len(jobs))
	for _, j := range jobs {
		points = append(points, j.Release, j.Deadline)
	}
	sort.Float64s(points)
	var energy float64
	for i := 0; i+1 < len(points); i++ {
		a, b := points[i], points[i+1]
		if b-a <= 1e-15 {
			continue
		}
		mid := (a + b) / 2
		var speed float64
		for _, j := range jobs {
			if j.Release <= mid && mid < j.Deadline {
				speed += j.Work / (j.Deadline - j.Release)
			}
		}
		energy += math.Pow(speed, alpha) * (b - a)
	}
	return energy, nil
}

// OAEnergy simulates Optimal Available (Bansal, Kim, Pruhs's analysis
// of Yao et al.'s second heuristic): at every release the scheduler
// recomputes the YDS-optimal plan over the remaining work, as if no
// further jobs will arrive. OA is alpha^alpha-competitive. Returns the
// total energy under power s^alpha.
func OAEnergy(jobs []Job, alpha float64) (float64, error) {
	if err := validateJobs(jobs); err != nil {
		return 0, err
	}
	sorted := make([]Job, len(jobs))
	copy(sorted, jobs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Release < sorted[j].Release })

	remaining := map[int]float64{}
	for _, j := range sorted {
		remaining[j.ID] = j.Work
	}
	deadlines := map[int]float64{}
	for _, j := range sorted {
		deadlines[j.ID] = j.Deadline
	}

	var energy float64
	for k := 0; k < len(sorted); k++ {
		now := sorted[k].Release
		horizon := math.Inf(1)
		if k+1 < len(sorted) {
			horizon = sorted[k+1].Release
		}
		// Plan YDS over everything released so far that still has
		// work; all of it is available now.
		var pend []Job
		for i := 0; i <= k; i++ {
			id := sorted[i].ID
			if remaining[id] > 1e-12 {
				pend = append(pend, Job{ID: id, Work: remaining[id], Release: now, Deadline: deadlines[id]})
			}
		}
		if len(pend) == 0 {
			continue
		}
		plan, err := YDS(pend)
		if err != nil {
			return 0, err
		}
		// Execute the plan until the next release.
		for _, ci := range plan {
			for _, seg := range ci.Segments {
				start := math.Max(seg.Start, now)
				end := math.Min(seg.End, horizon)
				if end <= start {
					continue
				}
				dur := end - start
				energy += math.Pow(ci.Speed, alpha) * dur
				// Drain the interval's jobs in EDF order, the order
				// the YDS schedule executes them.
				edf := append([]int(nil), ci.Jobs...)
				sort.SliceStable(edf, func(a, b int) bool {
					return deadlines[edf[a]] < deadlines[edf[b]]
				})
				drain := ci.Speed * dur
				for _, id := range edf {
					if drain <= 0 {
						break
					}
					take := math.Min(drain, remaining[id])
					remaining[id] -= take
					drain -= take
				}
			}
		}
	}
	return energy, nil
}
