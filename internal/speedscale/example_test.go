package speedscale_test

import (
	"fmt"

	"dvfsched/internal/speedscale"
)

// YDS finds the minimum-energy speed function: the dense inner job
// forms the first critical interval, the sparse outer job spreads
// over what remains.
func ExampleYDS() {
	jobs := []speedscale.Job{
		{ID: 1, Work: 8, Release: 0, Deadline: 10},
		{ID: 2, Work: 6, Release: 4, Deadline: 6},
	}
	plan, err := speedscale.YDS(jobs)
	if err != nil {
		panic(err)
	}
	for _, ci := range plan {
		fmt.Printf("speed %.1f for jobs %v over %.1f s\n", ci.Speed, ci.Jobs, ci.Duration())
	}
	fmt.Printf("energy at alpha=3: %.1f\n", speedscale.Energy(plan, 3))
	// Output:
	// speed 3.0 for jobs [2] over 2.0 s
	// speed 1.0 for jobs [1] over 8.0 s
	// energy at alpha=3: 62.0
}
