package speedscale

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsched/internal/deadline"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

const alpha = 3.0

func TestJobValidation(t *testing.T) {
	bad := []Job{
		{ID: 1, Work: 0, Release: 0, Deadline: 1},
		{ID: 1, Work: 1, Release: -1, Deadline: 1},
		{ID: 1, Work: 1, Release: 2, Deadline: 1},
		{ID: 1, Work: 1, Release: 0, Deadline: math.Inf(1)},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("accepted %+v", j)
		}
	}
	dup := []Job{
		{ID: 1, Work: 1, Release: 0, Deadline: 1},
		{ID: 1, Work: 1, Release: 0, Deadline: 2},
	}
	if _, err := YDS(dup); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := YDS(nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestYDSSingleJob(t *testing.T) {
	plan, err := YDS([]Job{{ID: 1, Work: 10, Release: 2, Deadline: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("intervals = %d", len(plan))
	}
	ci := plan[0]
	if math.Abs(ci.Speed-2) > 1e-9 { // 10 Gcyc over 5 s
		t.Errorf("speed = %v, want 2", ci.Speed)
	}
	if len(ci.Segments) != 1 || math.Abs(ci.Segments[0].Start-2) > 1e-9 || math.Abs(ci.Segments[0].End-7) > 1e-9 {
		t.Errorf("segments = %v", ci.Segments)
	}
	// Energy = s^alpha * dur = 8 * 5 = 40.
	if e := Energy(plan, alpha); math.Abs(e-40) > 1e-9 {
		t.Errorf("energy = %v, want 40", e)
	}
}

func TestYDSNestedJobsTextbook(t *testing.T) {
	// A dense inner job inside a sparse outer one: the inner is the
	// first critical interval; the outer spreads over the leftovers.
	jobs := []Job{
		{ID: 1, Work: 8, Release: 0, Deadline: 10}, // density 0.8
		{ID: 2, Work: 6, Release: 4, Deadline: 6},  // density 3.0
	}
	plan, err := YDS(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("intervals = %d: %+v", len(plan), plan)
	}
	if math.Abs(plan[0].Speed-3) > 1e-9 || plan[0].Jobs[0] != 2 {
		t.Errorf("first interval = %+v", plan[0])
	}
	// Job 1 then runs at 8/(10-2) = 1 over the remaining 8 seconds.
	if math.Abs(plan[1].Speed-1) > 1e-9 || plan[1].Jobs[0] != 1 {
		t.Errorf("second interval = %+v", plan[1])
	}
	// Its segments must avoid [4, 6].
	for _, s := range plan[1].Segments {
		if s.Start < 6-1e-9 && s.End > 4+1e-9 {
			t.Errorf("outer job segment %v overlaps the inner interval", s)
		}
	}
	if math.Abs(plan[1].Duration()-8) > 1e-9 {
		t.Errorf("outer duration = %v, want 8", plan[1].Duration())
	}
}

// checkStructure verifies the structural feasibility invariants of a
// YDS plan: work conservation per interval, window containment, and
// non-overlapping segments.
func checkStructure(t *testing.T, jobs []Job, plan []CriticalInterval) {
	t.Helper()
	byID := map[int]Job{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	scheduled := map[int]bool{}
	var all []Segment
	for _, ci := range plan {
		var work float64
		for _, id := range ci.Jobs {
			j, ok := byID[id]
			if !ok {
				t.Fatalf("unknown job %d in plan", id)
			}
			if scheduled[id] {
				t.Fatalf("job %d scheduled twice", id)
			}
			scheduled[id] = true
			work += j.Work
		}
		if math.Abs(work-ci.Speed*ci.Duration()) > 1e-6*math.Max(1, work) {
			t.Errorf("work %v != speed*duration %v", work, ci.Speed*ci.Duration())
		}
		// Preemptive EDF within the interval's segments at the
		// interval speed must meet every member deadline (the YDS
		// feasibility theorem).
		if !edfFeasibleWithin(ci, byID) {
			t.Errorf("interval at speed %v not EDF-feasible: jobs %v segments %v", ci.Speed, ci.Jobs, ci.Segments)
		}
		all = append(all, ci.Segments...)
	}
	if len(scheduled) != len(jobs) {
		t.Errorf("scheduled %d of %d jobs", len(scheduled), len(jobs))
	}
	// Segments must not overlap across intervals.
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].Start < all[j].End-1e-9 && all[j].Start < all[i].End-1e-9 {
				t.Errorf("segments overlap: %v and %v", all[i], all[j])
			}
		}
	}
	// Speeds are non-increasing across extractions.
	for i := 1; i < len(plan); i++ {
		if plan[i].Speed > plan[i-1].Speed+1e-9 {
			t.Errorf("speeds increase: %v then %v", plan[i-1].Speed, plan[i].Speed)
		}
	}
}

// edfFeasibleWithin simulates preemptive EDF over the interval's
// segments at its speed and reports whether every member job finishes
// by its deadline.
func edfFeasibleWithin(ci CriticalInterval, byID map[int]Job) bool {
	remaining := map[int]float64{}
	for _, id := range ci.Jobs {
		remaining[id] = byID[id].Work
	}
	for _, seg := range ci.Segments {
		now := seg.Start
		for now < seg.End-1e-12 {
			// Earliest-deadline released job with work left.
			best, bestDl := -1, math.Inf(1)
			nextRelease := math.Inf(1)
			for _, id := range ci.Jobs {
				if remaining[id] <= 1e-12 {
					continue
				}
				j := byID[id]
				if j.Release > now+1e-12 {
					if j.Release < nextRelease {
						nextRelease = j.Release
					}
					continue
				}
				if j.Deadline < bestDl {
					best, bestDl = id, j.Deadline
				}
			}
			if best < 0 {
				if nextRelease >= seg.End {
					break
				}
				now = nextRelease
				continue
			}
			// Run until completion, the next release, or segment end.
			runEnd := math.Min(seg.End, now+remaining[best]/ci.Speed)
			if nextRelease < runEnd {
				runEnd = nextRelease
			}
			remaining[best] -= (runEnd - now) * ci.Speed
			now = runEnd
			// Any unfinished job whose deadline passed is a miss.
			for _, id := range ci.Jobs {
				if remaining[id] > 1e-6 && byID[id].Deadline < now-1e-6 {
					return false
				}
			}
		}
	}
	for id, rem := range remaining {
		if rem > 1e-6 {
			_ = id
			return false
		}
	}
	return true
}

func randomJobs(rng *rand.Rand, n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		r := rng.Float64() * 10
		jobs[i] = Job{
			ID:       i,
			Work:     0.1 + rng.Float64()*5,
			Release:  r,
			Deadline: r + 0.2 + rng.Float64()*8,
		}
	}
	return jobs
}

func TestYDSStructureRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := randomJobs(rng, 1+rng.Intn(10))
		plan, err := YDS(jobs)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		checkStructure(t, jobs, plan)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// YDS is optimal: it never exceeds the energy of the feasible
// constant-speed schedule at the peak intensity, and the online
// algorithms never beat it.
func TestYDSOptimalityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := randomJobs(rng, 1+rng.Intn(8))
		plan, err := YDS(jobs)
		if err != nil {
			return false
		}
		opt := Energy(plan, alpha)

		avr, err := AVREnergy(jobs, alpha)
		if err != nil {
			return false
		}
		oa, err := OAEnergy(jobs, alpha)
		if err != nil {
			return false
		}
		if avr < opt-1e-6*opt {
			t.Logf("seed %d: AVR %v beat YDS %v", seed, avr, opt)
			return false
		}
		if oa < opt-1e-6*opt {
			t.Logf("seed %d: OA %v beat YDS %v", seed, oa, opt)
			return false
		}
		// Competitive bounds (loose).
		if oa > math.Pow(alpha, alpha)*opt+1e-6 {
			t.Logf("seed %d: OA %v above alpha^alpha bound of %v", seed, oa, math.Pow(alpha, alpha)*opt)
			return false
		}
		if avr > math.Pow(2, alpha-1)*math.Pow(alpha, alpha)*opt+1e-6 {
			t.Logf("seed %d: AVR %v above its bound", seed, avr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOAEqualsYDSWhenAllReleasedTogether(t *testing.T) {
	// With a single release time OA sees the whole instance at once.
	jobs := []Job{
		{ID: 1, Work: 4, Release: 0, Deadline: 3},
		{ID: 2, Work: 2, Release: 0, Deadline: 10},
		{ID: 3, Work: 1, Release: 0, Deadline: 6},
	}
	plan, err := YDS(jobs)
	if err != nil {
		t.Fatal(err)
	}
	opt := Energy(plan, alpha)
	oa, err := OAEnergy(jobs, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(oa-opt) > 1e-6*opt {
		t.Errorf("OA %v != YDS %v on a clairvoyant instance", oa, opt)
	}
}

func TestSpeedOfAndMaxSpeed(t *testing.T) {
	jobs := []Job{
		{ID: 1, Work: 8, Release: 0, Deadline: 10},
		{ID: 2, Work: 6, Release: 4, Deadline: 6},
	}
	plan, _ := YDS(jobs)
	if MaxSpeed(plan) != plan[0].Speed {
		t.Error("MaxSpeed mismatch")
	}
	if SpeedOf(plan, 2) != 3 || SpeedOf(plan, 1) != 1 {
		t.Errorf("SpeedOf: %v, %v", SpeedOf(plan, 2), SpeedOf(plan, 1))
	}
	if SpeedOf(plan, 99) != 0 {
		t.Error("unknown job speed != 0")
	}
	if MaxSpeed(nil) != 0 {
		t.Error("empty MaxSpeed != 0")
	}
}

func TestDiscretizeYDS(t *testing.T) {
	// Speeds in GHz range so Table II applies.
	jobs := []Job{
		{ID: 1, Work: 10, Release: 0, Deadline: 5},  // 2.0 Gcyc/s -> 2.0 GHz
		{ID: 2, Work: 5, Release: 10, Deadline: 12}, // 2.5 Gcyc/s -> 2.8 GHz
	}
	plan, err := YDS(jobs)
	if err != nil {
		t.Fatal(err)
	}
	levels, joules, err := DiscretizeYDS(jobs, plan, platform.TableII())
	if err != nil {
		t.Fatal(err)
	}
	if levels[1].Rate != 2.0 || levels[2].Rate != 2.8 {
		t.Errorf("levels = %v", levels)
	}
	want := model.TaskEnergy(10, levels[1]) + model.TaskEnergy(5, levels[2])
	if math.Abs(joules-want) > 1e-9 {
		t.Errorf("joules = %v, want %v", joules, want)
	}
	// Overloaded: speed beyond the fastest level errors.
	fast := []Job{{ID: 1, Work: 100, Release: 0, Deadline: 1}}
	fplan, _ := YDS(fast)
	if _, _, err := DiscretizeYDS(fast, fplan, platform.TableII()); err == nil {
		t.Error("impossible discretization accepted")
	}
}

// bruteMinEnergyEDF enumerates every rate assignment over the EDF
// order and returns the minimum feasible energy (+Inf if none).
func bruteMinEnergyEDF(order model.TaskSet, rates *model.RateTable) float64 {
	n := len(order)
	assign := make([]model.Assignment, n)
	for i, t := range order {
		assign[i] = model.Assignment{Task: t}
	}
	best := math.Inf(1)
	var rec func(i int, energy float64)
	rec = func(i int, energy float64) {
		if energy >= best {
			return
		}
		if i == n {
			if ok, _ := deadline.Feasible(assign); ok {
				best = energy
			}
			return
		}
		for li := 0; li < rates.Len(); li++ {
			assign[i].Level = rates.Level(li)
			rec(i+1, energy+model.TaskEnergy(order[i].Cycles, rates.Level(li)))
		}
	}
	rec(0, 0)
	return best
}

// Cross-package check: rounding YDS speeds up to hardware levels is
// always feasible and never beats the exact discrete optimum.
func TestDiscretizedYDSVsDeadlineDP(t *testing.T) {
	rates := platform.TableII()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		tasks := make(model.TaskSet, n)
		jobs := make([]Job, n)
		elapsed := 0.0
		for i := range tasks {
			cyc := 1 + rng.Float64()*5
			elapsed += cyc * rates.Max().Time
			dl := elapsed * (1.5 + rng.Float64())
			tasks[i] = model.Task{ID: i, Cycles: cyc, Deadline: dl}
			jobs[i] = Job{ID: i, Work: cyc, Release: 0, Deadline: dl}
		}
		plan, err := YDS(jobs)
		if err != nil {
			return false
		}
		levels, roundedJ, err := DiscretizeYDS(jobs, plan, rates)
		if err != nil {
			return true // YDS speed above hardware: skip
		}
		// The rounded schedule must be deadline-feasible: rates only
		// went up from the (feasible) continuous optimum.
		order := make([]model.Assignment, 0, n)
		for _, task := range deadline.EDFOrder(tasks) {
			order = append(order, model.Assignment{Task: task, Level: levels[task.ID]})
		}
		if ok, _ := deadline.Feasible(order); !ok {
			t.Logf("seed %d: rounded YDS schedule infeasible", seed)
			return false
		}
		// Exact discrete optimum by brute force (no grid): the
		// rounded YDS schedule is one feasible point, so it cannot
		// beat it.
		opt := bruteMinEnergyEDF(deadline.EDFOrder(tasks), rates)
		if math.IsInf(opt, 1) {
			return true // no feasible discrete schedule at all
		}
		if roundedJ < opt-1e-6 {
			t.Logf("seed %d: rounded YDS %v below exact optimum %v", seed, roundedJ, opt)
			return false
		}
		// And the grid DP stays within its conservatism of the exact
		// optimum.
		if dp, err := deadline.MinEnergyDP(tasks, rates, 0.01); err == nil {
			if dp.EnergyJ < opt-1e-6 {
				t.Logf("seed %d: DP %v below exact optimum %v", seed, dp.EnergyJ, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
