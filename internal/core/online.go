package core

import (
	"context"
	"fmt"

	"dvfsched/internal/model"
	"dvfsched/internal/online"
	"dvfsched/internal/sim"
)

// OnlineSession is a long-lived online-mode scheduling session: a
// Least Marginal Cost policy attached to an incrementally-driven
// virtual-time engine. Unlike RunOnline, which needs the whole trace
// up front, a session accepts arrivals as they become known — the
// shape a network-facing scheduler daemon needs. Methods must be
// called from a single goroutine.
type OnlineSession struct {
	sess *sim.Session
	lmc  *online.LMC
	pool *online.ProbePool
}

// OpenOnline starts an online session on the scheduler's platform with
// its cost constants, wiring in the scheduler's sink, metrics,
// envelope cache and candidate-evaluation pool.
func (s *Scheduler) OpenOnline(ctx context.Context) (*OnlineSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(err)
	}
	lmc, pool, err := s.newLMC()
	if err != nil {
		return nil, err
	}
	sess, err := sim.OpenSession(sim.Config{Platform: s.plat, Policy: lmc, Sink: s.sink}, s.params)
	if err != nil {
		if pool != nil {
			pool.Close()
		}
		return nil, err
	}
	return &OnlineSession{sess: sess, lmc: lmc, pool: pool}, nil
}

// Submit feeds a batch of arrivals into the session and advances
// virtual time to the latest arrival in the batch: the session's "now"
// is the newest arrival it has heard about, so earlier work may still
// be queued or running when the next batch lands. Task IDs must be
// unique across the session's lifetime and arrivals must not precede
// the session clock. Canceling ctx aborts the advance with an error
// matching ErrCanceled.
func (o *OnlineSession) Submit(ctx context.Context, tasks model.TaskSet) error {
	if len(tasks) == 0 {
		return ErrEmptySubmission
	}
	if err := o.sess.Inject(tasks); err != nil {
		return err
	}
	latest := tasks[0].Arrival
	for _, t := range tasks {
		if t.Arrival > latest {
			latest = t.Arrival
		}
	}
	return wrapCanceled(o.sess.AdvanceTo(ctx, latest))
}

// Admit feeds a batch of arrivals like Submit, but tolerates stale
// timestamps: any arrival earlier than the session clock is clamped up
// to the clock instead of rejected. Submit's strict check is right for
// replaying a recorded trace, where a stale arrival is corrupt input;
// Admit is the ingestion contract a serving daemon needs, where many
// clients stamp arrivals concurrently and a submit that lost the race
// into the shard queue would otherwise be bounced by time having moved
// on — an error the client can do nothing useful with. Clamped tasks
// are modified in place (the caller yields ownership of the slice, as
// with Inject), and the batch is then applied exactly like Submit:
// inject, then advance to the latest arrival.
func (o *OnlineSession) Admit(ctx context.Context, tasks model.TaskSet) error {
	if len(tasks) == 0 {
		return ErrEmptySubmission
	}
	now := o.sess.Clock()
	latest := now
	for i := range tasks {
		if tasks[i].Arrival < now {
			tasks[i].Arrival = now
		}
		if tasks[i].Arrival > latest {
			latest = tasks[i].Arrival
		}
	}
	if err := o.sess.Inject(tasks); err != nil {
		return err
	}
	return wrapCanceled(o.sess.AdvanceTo(ctx, latest))
}

// Clock returns the session's virtual time in seconds.
func (o *OnlineSession) Clock() float64 { return o.sess.Clock() }

// Pending returns the number of submitted tasks not yet completed.
func (o *OnlineSession) Pending() int { return o.sess.Pending() }

// Drain runs every submitted task to completion and returns the final
// measured result, releasing the session's worker pool. The session
// cannot be used after a successful drain; after a canceled one it
// remains usable (and Drain may be retried).
func (o *OnlineSession) Drain(ctx context.Context) (*sim.Result, error) {
	res, err := o.sess.Finish(ctx)
	if err != nil {
		return nil, wrapCanceled(err)
	}
	o.Close()
	return res, nil
}

// Close releases the session's candidate-evaluation pool without
// draining it. Idempotent; useful when a session is abandoned rather
// than drained. A closed session must not receive further Submits.
func (o *OnlineSession) Close() {
	if o.pool != nil {
		o.pool.Close()
	}
}

// String identifies the session's policy, for logs.
func (o *OnlineSession) String() string {
	return fmt.Sprintf("online session (%s, pending %d)", o.lmc.Name(), o.Pending())
}
