package core

import (
	"fmt"
	"time"

	"dvfsched/internal/model"
	"dvfsched/internal/online"
	"dvfsched/internal/sim"
)

// OnlineSession is a long-lived online-mode scheduling session: a
// Least Marginal Cost policy attached to an incrementally-driven
// virtual-time engine. Unlike RunOnline, which needs the whole trace
// up front, a session accepts arrivals as they become known — the
// shape a network-facing scheduler daemon needs. Methods must be
// called from a single goroutine.
type OnlineSession struct {
	sess *sim.Session
	lmc  *online.LMC
}

// OpenOnline starts an online session on the scheduler's platform with
// its cost constants. The scheduler's Sink and Metrics, if set, are
// wired into the session exactly as RunOnline would wire them.
func (s *Scheduler) OpenOnline() (*OnlineSession, error) {
	lmc, err := online.NewLMC(s.params)
	if err != nil {
		return nil, err
	}
	lmc.Metrics = s.Metrics
	lmc.Clock = time.Now
	sess, err := sim.OpenSession(sim.Config{Platform: s.plat, Policy: lmc, Sink: s.Sink}, s.params)
	if err != nil {
		return nil, err
	}
	return &OnlineSession{sess: sess, lmc: lmc}, nil
}

// Submit feeds a batch of arrivals into the session and advances
// virtual time to the latest arrival in the batch: the session's "now"
// is the newest arrival it has heard about, so earlier work may still
// be queued or running when the next batch lands. Task IDs must be
// unique across the session's lifetime and arrivals must not precede
// the session clock.
func (o *OnlineSession) Submit(tasks model.TaskSet) error {
	if len(tasks) == 0 {
		return fmt.Errorf("core: empty submission")
	}
	if err := o.sess.Inject(tasks); err != nil {
		return err
	}
	latest := tasks[0].Arrival
	for _, t := range tasks {
		if t.Arrival > latest {
			latest = t.Arrival
		}
	}
	return o.sess.AdvanceTo(latest)
}

// Clock returns the session's virtual time in seconds.
func (o *OnlineSession) Clock() float64 { return o.sess.Clock() }

// Pending returns the number of submitted tasks not yet completed.
func (o *OnlineSession) Pending() int { return o.sess.Pending() }

// Drain runs every submitted task to completion and returns the final
// measured result. The session cannot be used afterwards.
func (o *OnlineSession) Drain() (*sim.Result, error) {
	return o.sess.Finish()
}
