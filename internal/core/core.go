// Package core is the high-level facade over the paper's primary
// contribution: one type for batch-mode scheduling (Section III) and
// one for online-mode scheduling (Section IV), wired to the platform
// models and the simulator. Examples and tools that don't need the
// lower-level knobs use this API.
//
// Construct schedulers with New and functional options:
//
//	sched, err := core.New(params, plat,
//		core.WithMetrics(reg),
//		core.WithParallelism(4))
//
// Every entry point takes a context.Context; canceling it aborts
// planning and simulation work with an error matching ErrCanceled.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dvfsched/internal/batch"
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// Sentinel errors, matchable via errors.Is. Detailed messages wrap
// these with %w.
var (
	// ErrNilPlatform is returned by New when the platform is nil.
	ErrNilPlatform = errors.New("core: nil platform")
	// ErrNotBatchable is returned by PlanBatch when a task cannot be
	// scheduled in batch mode (non-zero arrival, deadline, or
	// interactive).
	ErrNotBatchable = errors.New("core: task not schedulable in batch mode")
	// ErrEmptySubmission is returned by OnlineSession.Submit for an
	// empty task batch.
	ErrEmptySubmission = errors.New("core: empty submission")
	// ErrCoreOutOfRange is returned for core indices outside the
	// platform.
	ErrCoreOutOfRange = errors.New("core: core index out of range")
	// ErrCanceled is returned when an entry point is aborted by its
	// context; the underlying context error is wrapped too, so
	// errors.Is(err, context.Canceled) also holds for cancellations.
	ErrCanceled = errors.New("core: canceled")
	// ErrNoCores is planning's empty-core-set error, re-exported from
	// package batch.
	ErrNoCores = batch.ErrNoCores
)

// wrapCanceled tags context-caused failures with ErrCanceled so
// callers (and the server's HTTP error mapping) can match them without
// knowing which layer noticed the cancellation first.
func wrapCanceled(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// Scheduler holds the pricing and platform a user schedules against,
// plus the execution knobs set through Options.
type Scheduler struct {
	params model.CostParams
	plat   *platform.Platform

	sink     obs.Sink
	metrics  *obs.Registry
	cache    *envelope.Cache
	parallel int
	clock    func() time.Time
}

// Option customizes a Scheduler at construction.
type Option func(*Scheduler)

// WithSink routes the simulator's structured event stream (task
// lifecycle, DVFS changes, core transitions) to sink during
// ExecuteBatch, RunOnline and online sessions.
func WithSink(sink obs.Sink) Option {
	return func(s *Scheduler) { s.sink = sink }
}

// WithMetrics collects scheduler-side counters and histograms
// (marginal-cost evaluations, dynamic-structure update latencies) into
// reg during online runs.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Scheduler) { s.metrics = reg }
}

// WithEnvelopeCache uses c to memoize envelope.Compute results. The
// default is the process-wide envelope.Shared() cache; passing nil
// disables caching and recomputes envelopes on every use.
func WithEnvelopeCache(c *envelope.Cache) Option {
	return func(s *Scheduler) { s.cache = c }
}

// WithEnvelopeCacheSize gives the scheduler a private envelope cache
// holding at most n entries (n <= 0 means envelope.DefaultCacheSize).
func WithEnvelopeCacheSize(n int) Option {
	return func(s *Scheduler) { s.cache = envelope.NewCache(n) }
}

// WithParallelism evaluates candidate cores with n-wide bounded worker
// pools during planning and online placement whenever the platform has
// at least 4 cores. n <= 1 (the default) keeps every evaluation on the
// calling goroutine. Results are identical either way.
func WithParallelism(n int) Option {
	return func(s *Scheduler) { s.parallel = n }
}

// WithClock injects the wall clock used to time dynamic-structure
// updates into the "rangetree.update_ns" histogram. The default is
// time.Now; passing nil keeps runs free of real-time reads and skips
// the histogram.
func WithClock(now func() time.Time) Option {
	return func(s *Scheduler) { s.clock = now }
}

// New builds a scheduler for the given cost constants and platform.
// The positional two-argument form remains valid and is equivalent to
// passing no options.
func New(params model.CostParams, plat *platform.Platform, opts ...Option) (*Scheduler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if plat == nil {
		return nil, ErrNilPlatform
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		params: params,
		plat:   plat,
		cache:  envelope.Shared(),
		clock:  time.Now,
	}
	for _, o := range opts {
		if o != nil {
			o(s)
		}
	}
	return s, nil
}

// Params returns the cost constants.
func (s *Scheduler) Params() model.CostParams { return s.params }

// Platform returns the platform.
func (s *Scheduler) Platform() *platform.Platform { return s.plat }

// PlanBatch computes the cost-optimal batch schedule for tasks without
// deadlines (Workload Based Greedy, Theorem 5). All tasks must have
// Arrival 0 and no deadline. Canceling ctx aborts planning with an
// error matching ErrCanceled.
func (s *Scheduler) PlanBatch(ctx context.Context, tasks model.TaskSet) (*batch.Plan, error) {
	for _, t := range tasks {
		if t.Arrival != 0 {
			return nil, fmt.Errorf("%w: task %d arrives at %v; batch tasks arrive at 0", ErrNotBatchable, t.ID, t.Arrival)
		}
		if t.HasDeadline() {
			return nil, fmt.Errorf("%w: task %d has a deadline; use package deadline", ErrNotBatchable, t.ID)
		}
		if t.Interactive {
			return nil, fmt.Errorf("%w: task %d is interactive; use RunOnline", ErrNotBatchable, t.ID)
		}
	}
	cores := make([]batch.CoreSpec, s.plat.NumCores())
	for i, rt := range s.plat.Cores {
		cores[i] = batch.CoreSpec{Rates: rt}
	}
	plan, err := batch.WBGContext(ctx, s.params, cores, tasks, batch.Opts{Cache: s.cache, Workers: s.parallel})
	if err != nil {
		return nil, wrapCanceled(err)
	}
	return plan, nil
}

// ExecuteBatch plans tasks with WBG and executes the plan on the
// platform's simulator, returning the measured result.
func (s *Scheduler) ExecuteBatch(ctx context.Context, tasks model.TaskSet) (*sim.Result, error) {
	plan, err := s.PlanBatch(ctx, tasks)
	if err != nil {
		return nil, err
	}
	fp, err := sim.NewFixedPlan(plan)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunContext(ctx, sim.Config{Platform: s.plat, Policy: fp, Sink: s.sink}, tasks, s.params)
	if err != nil {
		return nil, wrapCanceled(err)
	}
	return res, nil
}

// newLMC builds the Least Marginal Cost policy wired to the
// scheduler's observability and performance knobs, plus the probe pool
// to close after the run (nil when parallelism is off).
func (s *Scheduler) newLMC() (*online.LMC, *online.ProbePool, error) {
	lmc, err := online.NewLMC(s.params)
	if err != nil {
		return nil, nil, err
	}
	lmc.Metrics = s.metrics
	lmc.Clock = s.clock
	lmc.Cache = s.cache
	var pool *online.ProbePool
	if s.parallel >= 2 {
		pool = online.NewProbePool(s.parallel)
		lmc.Pool = pool
	}
	return lmc, pool, nil
}

// RunOnline schedules an online trace (mixed interactive and
// non-interactive tasks with arbitrary arrivals) with Least Marginal
// Cost on the platform's simulator.
func (s *Scheduler) RunOnline(ctx context.Context, tasks model.TaskSet) (*sim.Result, error) {
	lmc, pool, err := s.newLMC()
	if err != nil {
		return nil, err
	}
	if pool != nil {
		defer pool.Close()
	}
	res, err := sim.RunContext(ctx, sim.Config{Platform: s.plat, Policy: lmc, Sink: s.sink}, tasks, s.params)
	if err != nil {
		return nil, wrapCanceled(err)
	}
	return res, nil
}

// DominatingRanges returns the dominating position ranges of core i:
// which frequency a task should use as a function of how much work
// runs after it (Algorithm 1).
func (s *Scheduler) DominatingRanges(i int) (*envelope.Envelope, error) {
	if i < 0 || i >= s.plat.NumCores() {
		return nil, fmt.Errorf("%w: core %d", ErrCoreOutOfRange, i)
	}
	if s.cache != nil {
		return s.cache.Get(s.params, s.plat.Cores[i])
	}
	return envelope.Compute(s.params, s.plat.Cores[i])
}
