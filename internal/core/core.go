// Package core is the high-level facade over the paper's primary
// contribution: one type for batch-mode scheduling (Section III) and
// one for online-mode scheduling (Section IV), wired to the platform
// models and the simulator. Examples and tools that don't need the
// lower-level knobs use this API.
package core

import (
	"fmt"
	"time"

	"dvfsched/internal/batch"
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// Scheduler holds the pricing and platform a user schedules against.
type Scheduler struct {
	params model.CostParams
	plat   *platform.Platform

	// Sink, if set, receives the simulator's event stream (task
	// lifecycle, DVFS changes, core transitions) during ExecuteBatch
	// and RunOnline.
	Sink obs.Sink
	// Metrics, if set, collects scheduler-side counters and
	// histograms (marginal-cost evaluations, dynamic-structure update
	// latencies) during RunOnline.
	Metrics *obs.Registry
}

// New builds a scheduler for the given cost constants and platform.
func New(params model.CostParams, plat *platform.Platform) (*Scheduler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if plat == nil {
		return nil, fmt.Errorf("core: nil platform")
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{params: params, plat: plat}, nil
}

// Params returns the cost constants.
func (s *Scheduler) Params() model.CostParams { return s.params }

// Platform returns the platform.
func (s *Scheduler) Platform() *platform.Platform { return s.plat }

// PlanBatch computes the cost-optimal batch schedule for tasks without
// deadlines (Workload Based Greedy, Theorem 5). All tasks must have
// Arrival 0 and no deadline.
func (s *Scheduler) PlanBatch(tasks model.TaskSet) (*batch.Plan, error) {
	for _, t := range tasks {
		if t.Arrival != 0 {
			return nil, fmt.Errorf("core: task %d arrives at %v; batch tasks arrive at 0", t.ID, t.Arrival)
		}
		if t.HasDeadline() {
			return nil, fmt.Errorf("core: task %d has a deadline; use package deadline", t.ID)
		}
		if t.Interactive {
			return nil, fmt.Errorf("core: task %d is interactive; use RunOnline", t.ID)
		}
	}
	cores := make([]batch.CoreSpec, s.plat.NumCores())
	for i, rt := range s.plat.Cores {
		cores[i] = batch.CoreSpec{Rates: rt}
	}
	return batch.WBG(s.params, cores, tasks)
}

// ExecuteBatch plans tasks with WBG and executes the plan on the
// platform's simulator, returning the measured result.
func (s *Scheduler) ExecuteBatch(tasks model.TaskSet) (*sim.Result, error) {
	plan, err := s.PlanBatch(tasks)
	if err != nil {
		return nil, err
	}
	fp, err := sim.NewFixedPlan(plan)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{Platform: s.plat, Policy: fp, Sink: s.Sink}, tasks, s.params)
}

// RunOnline schedules an online trace (mixed interactive and
// non-interactive tasks with arbitrary arrivals) with Least Marginal
// Cost on the platform's simulator.
func (s *Scheduler) RunOnline(tasks model.TaskSet) (*sim.Result, error) {
	lmc, err := online.NewLMC(s.params)
	if err != nil {
		return nil, err
	}
	lmc.Metrics = s.Metrics
	lmc.Clock = time.Now
	return sim.Run(sim.Config{Platform: s.plat, Policy: lmc, Sink: s.Sink}, tasks, s.params)
}

// DominatingRanges returns the dominating position ranges of core i:
// which frequency a task should use as a function of how much work
// runs after it (Algorithm 1).
func (s *Scheduler) DominatingRanges(i int) (*envelope.Envelope, error) {
	if i < 0 || i >= s.plat.NumCores() {
		return nil, fmt.Errorf("core: core %d out of range", i)
	}
	return envelope.Compute(s.params, s.plat.Cores[i])
}
