package core

import (
	"context"

	"dvfsched/internal/sim"
)

// Snapshot serializes the session's complete state — virtual clock,
// per-core run state, pending work, and the LMC policy's queues and
// cost structures — into a self-describing binary checkpoint. Restore
// it with Scheduler.RestoreOnline; recovery of a traced session is
// "restore the snapshot, replay the trace suffix". The session remains
// usable after a snapshot.
func (o *OnlineSession) Snapshot() ([]byte, error) {
	cp, err := o.sess.Snapshot()
	if err != nil {
		return nil, err
	}
	return cp.MarshalBinary()
}

// RestoreOnline rebuilds an online session from a Snapshot-produced
// checkpoint. The scheduler must be configured with the same platform
// and cost constants the snapshot was taken under (the checkpoint's
// internal validation rejects mismatches); sinks and metrics may
// differ — the restored session's events continue the original
// sequence numbers into whatever sink this scheduler wires in.
func (s *Scheduler) RestoreOnline(ctx context.Context, snapshot []byte) (*OnlineSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(err)
	}
	cp, err := sim.UnmarshalCheckpoint(snapshot)
	if err != nil {
		return nil, err
	}
	lmc, pool, err := s.newLMC()
	if err != nil {
		return nil, err
	}
	sess, err := sim.RestoreSession(sim.Config{Platform: s.plat, Policy: lmc, Sink: s.sink}, s.params, cp)
	if err != nil {
		if pool != nil {
			pool.Close()
		}
		return nil, err
	}
	return &OnlineSession{sess: sess, lmc: lmc, pool: pool}, nil
}
