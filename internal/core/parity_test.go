package core_test

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"dvfsched/internal/core"
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/report"
	"dvfsched/internal/workload"
)

// judgeTrace generates the mixed online workload the parity tests
// replay: interactive and non-interactive arrivals over 4 cores.
func judgeTrace(t *testing.T) model.TaskSet {
	t.Helper()
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 300, 45, 80
	tasks, err := judge.Generate(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

// runOnlineTimeline executes the trace with the given options and
// returns the replayed timeline CSV plus the result, so two
// configurations can be compared byte for byte.
func runOnlineTimeline(t *testing.T, tasks model.TaskSet, opts ...core.Option) ([]byte, float64) {
	t.Helper()
	rec := &obs.Recorder{}
	opts = append(opts, core.WithSink(rec))
	sched, err := core.New(model.CostParams{Re: 0.1, Rt: 0.4},
		platform.Homogeneous(4, platform.TableII(), platform.Ideal{}), opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.RunOnline(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	timeline, err := report.TimelineFromEvents(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.TimelineCSV(&buf, timeline); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res.TotalCost
}

// TestRunOnlineParityAcrossOptions is the PR's differential proof: the
// envelope cache and the parallel candidate-evaluation pool are pure
// performance knobs. Every configuration must replay to a
// byte-identical schedule timeline and the exact same cost bits as
// the sequential, uncached reference.
func TestRunOnlineParityAcrossOptions(t *testing.T) {
	tasks := judgeTrace(t)
	refCSV, refCost := runOnlineTimeline(t, tasks, core.WithEnvelopeCache(nil))

	configs := map[string][]core.Option{
		"cached":              {core.WithEnvelopeCache(envelope.NewCache(8))},
		"parallel":            {core.WithEnvelopeCache(nil), core.WithParallelism(4)},
		"cached+parallel":     {core.WithEnvelopeCache(envelope.NewCache(8)), core.WithParallelism(4)},
		"wide-pool":           {core.WithParallelism(16)},
		"private-small-cache": {core.WithEnvelopeCacheSize(1)},
	}
	names := []string{"cached", "parallel", "cached+parallel", "wide-pool", "private-small-cache"}
	for _, name := range names {
		csv, cost := runOnlineTimeline(t, tasks, configs[name]...)
		if math.Float64bits(cost) != math.Float64bits(refCost) {
			t.Errorf("%s: total cost %v differs from reference %v", name, cost, refCost)
		}
		if !bytes.Equal(csv, refCSV) {
			t.Errorf("%s: replayed timeline differs from the sequential uncached reference", name)
		}
	}
}

// TestPlanBatchParityAcrossOptions mirrors the differential proof for
// the batch plane: Workload Based Greedy with cached envelopes and
// parallel resolution must produce the same plan document.
func TestPlanBatchParityAcrossOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tasks := make(model.TaskSet, 40)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 5 + rng.Float64()*800, Deadline: model.NoDeadline}
	}
	plat := platform.Homogeneous(8, platform.TableII(), platform.Ideal{})
	params := model.CostParams{Re: 0.1, Rt: 0.4}

	planJSON := func(opts ...core.Option) []byte {
		sched, err := core.New(params, plat, opts...)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sched.PlanBatch(context.Background(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := plan.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	ref := planJSON(core.WithEnvelopeCache(nil))
	for _, tc := range []struct {
		name string
		opts []core.Option
	}{
		{"cached", []core.Option{core.WithEnvelopeCache(envelope.NewCache(8))}},
		{"cached+parallel", []core.Option{core.WithEnvelopeCache(envelope.NewCache(8)), core.WithParallelism(4)}},
	} {
		if got := planJSON(tc.opts...); !bytes.Equal(got, ref) {
			t.Errorf("%s: plan JSON differs from sequential uncached reference", tc.name)
		}
	}
}
