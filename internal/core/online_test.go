package core_test

import (
	"context"
	"math/rand"
	"testing"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/workload"
)

func onlineTrace(t *testing.T, seed int64) model.TaskSet {
	t.Helper()
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 200, 30, 60
	tasks, err := judge.Generate(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

// TestOpenOnlineMatchesRunOnline submits a judge trace in arrival-time
// batches and checks the drained result equals the one-shot RunOnline
// on the same trace.
func TestOpenOnlineMatchesRunOnline(t *testing.T) {
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})
	tasks := onlineTrace(t, 42)

	ref, err := core.New(params, plat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RunOnline(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sched, err := core.New(params, plat, core.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sched.OpenOnline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ordered := tasks.Clone()
	ordered.ByArrival()
	for len(ordered) > 0 {
		n := 7
		if n > len(ordered) {
			n = len(ordered)
		}
		if err := sess.Submit(context.Background(), ordered[:n]); err != nil {
			t.Fatal(err)
		}
		ordered = ordered[n:]
	}
	if sess.Pending() == 0 {
		t.Fatal("expected work still pending before drain (batches should interleave)")
	}
	got, err := sess.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCost != want.TotalCost || got.TotalEnergy != want.TotalEnergy ||
		got.Makespan != want.Makespan {
		t.Fatalf("session diverged:\n got cost=%v energy=%v makespan=%v\nwant cost=%v energy=%v makespan=%v",
			got.TotalCost, got.TotalEnergy, got.Makespan,
			want.TotalCost, want.TotalEnergy, want.Makespan)
	}
	if reg.Snapshot().Counters["lmc.marginal_evals"] == 0 {
		t.Fatal("session did not feed scheduler metrics")
	}
}

// TestAdmitClampsStaleArrivals covers the serving-plane ingestion
// contract: a batch stamped before the session clock is clamped to
// "now" and admitted, where Submit would reject it.
func TestAdmitClampsStaleArrivals(t *testing.T) {
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	sched, err := core.New(params, platform.Homogeneous(2, platform.TableII(), platform.Ideal{}))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sched.OpenOnline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Admit(context.Background(), nil); err == nil {
		t.Fatal("empty admission accepted")
	}
	first := model.TaskSet{{ID: 1, Cycles: 10, Arrival: 5, Deadline: model.NoDeadline}}
	if err := sess.Admit(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	if sess.Clock() != 5 {
		t.Fatalf("clock %v != 5", sess.Clock())
	}
	// One stale arrival, one in the future: the stale one moves to the
	// clock, the future one advances it.
	mixed := model.TaskSet{
		{ID: 2, Cycles: 10, Arrival: 1, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 10, Arrival: 7, Deadline: model.NoDeadline},
	}
	if err := sess.Admit(context.Background(), mixed); err != nil {
		t.Fatalf("stale arrival not clamped: %v", err)
	}
	if mixed[0].Arrival != 5 {
		t.Fatalf("stale arrival = %v, want clamped to 5", mixed[0].Arrival)
	}
	if sess.Clock() != 7 {
		t.Fatalf("clock %v != 7 (latest admitted arrival)", sess.Clock())
	}
	// Duplicate IDs are still rejected — clamping loosens time, not
	// identity.
	if err := sess.Admit(context.Background(), first.Clone()); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	res, err := sess.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 3 {
		t.Fatalf("completed %d tasks, want 3", len(res.Tasks))
	}
}

func TestOpenOnlineRejectsBadSubmissions(t *testing.T) {
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	sched, err := core.New(params, platform.Homogeneous(2, platform.TableII(), platform.Ideal{}))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sched.OpenOnline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(context.Background(), nil); err == nil {
		t.Fatal("empty submission accepted")
	}
	batch := model.TaskSet{{ID: 1, Cycles: 10, Arrival: 5, Deadline: model.NoDeadline}}
	if err := sess.Submit(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if sess.Clock() != 5 {
		t.Fatalf("clock %v != 5 (latest arrival)", sess.Clock())
	}
	stale := model.TaskSet{{ID: 2, Cycles: 10, Arrival: 1, Deadline: model.NoDeadline}}
	if err := sess.Submit(context.Background(), stale); err == nil {
		t.Fatal("stale arrival accepted")
	}
	if _, err := sess.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Drain(context.Background()); err == nil {
		t.Fatal("double drain accepted")
	}
}
