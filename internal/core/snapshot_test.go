package core_test

import (
	"context"
	"math"
	"testing"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

func jsonTrace(events []obs.Event) []byte {
	var b []byte
	for _, ev := range events {
		b = ev.AppendJSON(b)
		b = append(b, '\n')
	}
	return b
}

func bitEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestOnlineSnapshotRestoreEquivalence is the end-to-end recovery
// property at the facade level: run an LMC session partway through a
// judge-style trace, snapshot it to bytes, restore it on a separate
// Scheduler, feed both sessions the identical remaining arrivals, and
// require the drained results to be bit-identical and the restored
// session's event trace to be byte-for-byte the suffix of the
// uninterrupted session's.
func TestOnlineSnapshotRestoreEquivalence(t *testing.T) {
	ctx := context.Background()
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	plat := platform.Homogeneous(4, platform.TableII(), platform.DefaultRealistic())
	ordered := onlineTrace(t, 99)
	ordered.ByArrival()

	var batches []model.TaskSet
	for len(ordered) > 0 {
		n := min(9, len(ordered))
		batches = append(batches, ordered[:n])
		ordered = ordered[n:]
	}
	cutAt := len(batches) / 2

	recA := &obs.Recorder{}
	schedA, err := core.New(params, plat, core.WithSink(recA), core.WithMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	sessA, err := schedA.OpenOnline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:cutAt] {
		if err := sessA.Submit(ctx, b.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if sessA.Pending() == 0 {
		t.Fatal("no work pending at the cut; the snapshot would be trivial")
	}

	blob, err := sessA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sim.UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}

	recB := &obs.Recorder{}
	schedB, err := core.New(params, plat, core.WithSink(recB), core.WithMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := schedB.RestoreOnline(ctx, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEq(sessB.Clock(), sessA.Clock()) || sessB.Pending() != sessA.Pending() {
		t.Fatalf("restored session at clock %v / pending %d, original %v / %d",
			sessB.Clock(), sessB.Pending(), sessA.Clock(), sessA.Pending())
	}

	// Both sessions now receive the identical remainder of the trace —
	// per-side clones, since injection takes ownership.
	for _, b := range batches[cutAt:] {
		if err := sessA.Submit(ctx, b.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := sessB.Submit(ctx, b.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	// And one stale batch through the serving-plane Admit path: both
	// clocks are equal, so both clamp identically.
	stale := model.TaskSet{{ID: 90001, Cycles: 4, Arrival: 0, Deadline: model.NoDeadline, Interactive: true}}
	if err := sessA.Admit(ctx, stale.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := sessB.Admit(ctx, stale.Clone()); err != nil {
		t.Fatal(err)
	}

	resA, err := sessA.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sessB.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if !bitEq(resA.TotalCost, resB.TotalCost) || !bitEq(resA.TotalEnergy, resB.TotalEnergy) ||
		!bitEq(resA.Makespan, resB.Makespan) || !bitEq(resA.TurnaroundSum, resB.TurnaroundSum) ||
		resA.Switches != resB.Switches || resA.Preemptions != resB.Preemptions {
		t.Fatalf("drained results diverged:\n  original cost=%v energy=%v makespan=%v sw=%d pre=%d\n  restored cost=%v energy=%v makespan=%v sw=%d pre=%d",
			resA.TotalCost, resA.TotalEnergy, resA.Makespan, resA.Switches, resA.Preemptions,
			resB.TotalCost, resB.TotalEnergy, resB.Makespan, resB.Switches, resB.Preemptions)
	}
	if len(resA.Tasks) != len(resB.Tasks) {
		t.Fatalf("task counts diverged: %d vs %d", len(resA.Tasks), len(resB.Tasks))
	}
	for i := range resA.Tasks {
		x, y := resA.Tasks[i], resB.Tasks[i]
		if x.Task.ID != y.Task.ID || !bitEq(x.Completion, y.Completion) || !bitEq(x.Energy, y.Energy) {
			t.Fatalf("task %d diverged: completion %v/%v energy %v/%v",
				x.Task.ID, x.Completion, y.Completion, x.Energy, y.Energy)
		}
	}

	// The decisive check: the restored trace IS the original's suffix.
	all := recA.Events()
	var suffix []obs.Event
	for i, ev := range all {
		if ev.Seq > cp.EvSeq {
			suffix = all[i:]
			break
		}
	}
	want, got := jsonTrace(suffix), jsonTrace(recB.Events())
	if len(got) == 0 {
		t.Fatal("restored session emitted no events")
	}
	if string(want) != string(got) {
		t.Fatalf("trace suffix diverged: original %d bytes, restored %d bytes", len(want), len(got))
	}
}

func TestRestoreOnlineRejectsBadInput(t *testing.T) {
	ctx := context.Background()
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	sched4, err := core.New(params, platform.Homogeneous(4, platform.TableII(), platform.Ideal{}))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sched4.OpenOnline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(ctx, model.TaskSet{
		{ID: 1, Cycles: 30, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 10, Arrival: 0.5, Deadline: model.NoDeadline},
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sched4.RestoreOnline(ctx, []byte("not a checkpoint")); err == nil {
		t.Error("garbage accepted")
	}

	sched2, err := core.New(params, platform.Homogeneous(2, platform.TableII(), platform.Ideal{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched2.RestoreOnline(ctx, blob); err == nil {
		t.Error("core-count mismatch accepted")
	}

	// The original session is still live after its snapshot.
	if _, err := sess.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
