package core

import (
	"context"
	"math"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func newScheduler(t *testing.T) *Scheduler {
	t.Helper()
	s, err := New(model.CostParams{Re: 0.1, Rt: 0.4},
		platform.Homogeneous(4, platform.TableII(), platform.Ideal{}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := New(model.CostParams{}, platform.Homogeneous(1, platform.TableII(), nil)); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := New(model.CostParams{Re: 1, Rt: 1}, nil); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := New(model.CostParams{Re: 1, Rt: 1}, &platform.Platform{}); err == nil {
		t.Error("empty platform accepted")
	}
}

func TestPlanBatchRejectsNonBatchTasks(t *testing.T) {
	s := newScheduler(t)
	cases := map[string]model.Task{
		"late arrival": {ID: 1, Cycles: 1, Arrival: 5, Deadline: model.NoDeadline},
		"deadline":     {ID: 1, Cycles: 1, Deadline: 10},
		"interactive":  {ID: 1, Cycles: 1, Interactive: true, Deadline: model.NoDeadline},
	}
	for name, task := range cases {
		if _, err := s.PlanBatch(context.Background(), model.TaskSet{task}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestExecuteBatchMatchesPlanUnderIdeal(t *testing.T) {
	s := newScheduler(t)
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 100, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 40, Deadline: model.NoDeadline},
	}
	plan, err := s.PlanBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	_, _, want := plan.Cost()
	res, err := s.ExecuteBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalCost-want) > 1e-6*want {
		t.Errorf("executed cost %v != planned %v", res.TotalCost, want)
	}
}

func TestRunOnline(t *testing.T) {
	s := newScheduler(t)
	tasks := model.TaskSet{
		{ID: 1, Cycles: 50, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 0.01, Arrival: 1, Interactive: true, Deadline: 2},
	}
	res, err := s.RunOnline(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Errorf("task %d unfinished", ts.Task.ID)
		}
	}
	if res.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", res.Preemptions)
	}
}

func TestDominatingRanges(t *testing.T) {
	s := newScheduler(t)
	env, err := s.DominatingRanges(0)
	if err != nil {
		t.Fatal(err)
	}
	if env.NumRanges() == 0 {
		t.Error("no ranges")
	}
	if _, err := s.DominatingRanges(99); err == nil {
		t.Error("out-of-range core accepted")
	}
	if _, err := s.DominatingRanges(-1); err == nil {
		t.Error("negative core accepted")
	}
}

func TestAccessors(t *testing.T) {
	s := newScheduler(t)
	if s.Params().Re != 0.1 || s.Platform().NumCores() != 4 {
		t.Error("accessors wrong")
	}
}
