package core_test

import (
	"context"
	"fmt"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// The facade plans and executes a batch in two calls.
func ExampleScheduler_ExecuteBatch() {
	sched, err := core.New(model.CostParams{Re: 0.1, Rt: 0.4},
		platform.Homogeneous(2, platform.TableII(), platform.Ideal{}))
	if err != nil {
		panic(err)
	}
	tasks := model.TaskSet{
		{ID: 1, Cycles: 8, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 80, Deadline: model.NoDeadline},
	}
	res, err := sched.ExecuteBatch(context.Background(), tasks)
	if err != nil {
		panic(err)
	}
	fmt.Printf("done in %.1f s using %.1f J\n", res.Makespan, res.ActiveEnergy)
	// Output:
	// done in 50.0 s using 297.0 J
}
