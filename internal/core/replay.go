package core

import (
	"context"
	"fmt"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
)

// ReplayTrace re-admits the arrival events of a recorded trace into
// the session, skipping events with Seq <= afterSeq and tasks for
// which known reports true (tasks already present in a restored
// checkpoint). Arrivals are submitted one at a time, in sequence
// order, at their recorded (possibly clamped) timestamps — arrival
// events pop from the engine in nondecreasing time order, so the
// strict Submit contract always holds and the engine re-derives the
// same schedule it produced the first time. It returns the number of
// tasks re-admitted.
//
// This is the recovery half of the "restore the snapshot, replay the
// trace suffix" doctrine: internal/cluster promotes a replica by
// restoring its last shipped checkpoint into a fresh session and
// replaying the shipped log's arrival suffix through this method.
// Names and deadlines are not recorded in arrival events and are
// dropped on replay; the Least Marginal Cost policy consults neither,
// so the rebuilt schedule is unchanged.
func (o *OnlineSession) ReplayTrace(ctx context.Context, events []obs.Event, afterSeq uint64, known func(id int) bool) (int, error) {
	n := 0
	for _, ev := range events {
		if ev.Seq <= afterSeq || ev.Kind != obs.KindArrival {
			continue
		}
		if known != nil && known(ev.Task) {
			continue
		}
		task := model.Task{
			ID:          ev.Task,
			Cycles:      ev.Cycles,
			Arrival:     ev.T,
			Deadline:    model.NoDeadline,
			Interactive: ev.Interactive,
		}
		if err := o.Submit(ctx, model.TaskSet{task}); err != nil {
			return n, fmt.Errorf("replay arrival seq %d (task %d at t=%v): %w", ev.Seq, ev.Task, ev.T, err)
		}
		n++
	}
	return n, nil
}
