package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCostParamsValidate(t *testing.T) {
	if err := (CostParams{Re: 0.1, Rt: 0.4}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []CostParams{
		{Re: 0, Rt: 1},
		{Re: 1, Rt: 0},
		{Re: -1, Rt: 1},
		{Re: math.NaN(), Rt: 1},
		{Re: 1, Rt: math.Inf(1)},
	}
	for _, cp := range bad {
		if err := cp.Validate(); err == nil {
			t.Errorf("expected error for %+v", cp)
		}
	}
}

func TestTaskEnergyAndTime(t *testing.T) {
	l := RateLevel{Rate: 2, Energy: 4.22, Time: 0.5}
	if e := TaskEnergy(10, l); math.Abs(e-42.2) > 1e-12 {
		t.Errorf("TaskEnergy = %v, want 42.2", e)
	}
	if d := TaskTime(10, l); d != 5 {
		t.Errorf("TaskTime = %v, want 5", d)
	}
}

func TestPositionCostRelations(t *testing.T) {
	cp := CostParams{Re: 0.1, Rt: 0.4}
	l := RateLevel{Rate: 2, Energy: 4.22, Time: 0.5}
	n := 10
	// C(k, p) with forward index k equals C^B(n-k+1, p).
	for k := 1; k <= n; k++ {
		fwd := cp.PositionCost(k, n, l)
		bwd := cp.BackwardPositionCost(n-k+1, l)
		if math.Abs(fwd-bwd) > 1e-12 {
			t.Fatalf("C(%d,%d)=%v != C^B(%d)=%v", k, n, fwd, n-k+1, bwd)
		}
	}
	// C^B(1) = Re*E + Rt*T.
	if got, want := cp.BackwardPositionCost(1, l), 0.1*4.22+0.4*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("C^B(1) = %v, want %v", got, want)
	}
}

func TestBestBackwardLevelMonotone(t *testing.T) {
	// Lemma 2 restated backward: C^B(k) is increasing in k, and the
	// chosen rate is non-decreasing in k (more tasks behind -> faster).
	cp := CostParams{Re: 0.1, Rt: 0.4}
	rt := MustRateTable(table2Levels())
	prevCost := -1.0
	prevRate := 0.0
	for k := 1; k <= 200; k++ {
		l, c := cp.BestBackwardLevel(k, rt)
		if c <= prevCost {
			t.Fatalf("C^B(k) not increasing at k=%d: %v <= %v", k, c, prevCost)
		}
		if l.Rate < prevRate {
			t.Fatalf("optimal rate decreased at k=%d: %v < %v", k, l.Rate, prevRate)
		}
		prevCost, prevRate = c, l.Rate
	}
	// For huge k the fastest rate must win; for k=1 with heavily
	// energy-weighted params the slowest must win.
	if l, _ := cp.BestBackwardLevel(1_000_000, rt); l.Rate != rt.Max().Rate {
		t.Errorf("k=1e6 chose %v, want max %v", l.Rate, rt.Max().Rate)
	}
	energyHeavy := CostParams{Re: 100, Rt: 0.0001}
	if l, _ := energyHeavy.BestBackwardLevel(1, rt); l.Rate != rt.Min().Rate {
		t.Errorf("energy-heavy k=1 chose %v, want min %v", l.Rate, rt.Min().Rate)
	}
}

func TestBestBackwardLevelTieBreaksHigh(t *testing.T) {
	// Two rates engineered to tie at k = 1: Re(E2-E1) = Rt(T1-T2).
	cp := CostParams{Re: 1, Rt: 1}
	rt := MustRateTable([]RateLevel{
		{Rate: 1, Energy: 1, Time: 2},
		{Rate: 2, Energy: 2, Time: 1},
	})
	l, _ := cp.BestBackwardLevel(1, rt)
	if l.Rate != 2 {
		t.Errorf("tie broke to %v, want the higher rate 2", l.Rate)
	}
}

func TestSequenceCost(t *testing.T) {
	cp := CostParams{Re: 0.1, Rt: 0.4}
	l1 := RateLevel{Rate: 1, Energy: 1, Time: 1}
	l2 := RateLevel{Rate: 2, Energy: 4, Time: 0.5}
	seq := []Assignment{
		{Task: Task{Cycles: 2}, Level: l1}, // runs [0,2): energy 2, turnaround 2
		{Task: Task{Cycles: 4}, Level: l2}, // runs [2,4): energy 16, turnaround 4
	}
	e, tc, total := cp.SequenceCost(seq, 0)
	wantE := 0.1 * (2 + 16)
	wantT := 0.4 * (2 + 4)
	if math.Abs(e-wantE) > 1e-12 || math.Abs(tc-wantT) > 1e-12 {
		t.Errorf("SequenceCost = (%v, %v), want (%v, %v)", e, tc, wantE, wantT)
	}
	if math.Abs(total-(wantE+wantT)) > 1e-12 {
		t.Errorf("total = %v", total)
	}
	// A non-zero start time delays every turnaround.
	_, tc2, _ := cp.SequenceCost(seq, 10)
	if math.Abs(tc2-0.4*(12+14)) > 1e-12 {
		t.Errorf("shifted time cost = %v", tc2)
	}
	// Empty sequence costs nothing.
	if _, _, tot := cp.SequenceCost(nil, 5); tot != 0 {
		t.Errorf("empty sequence cost = %v", tot)
	}
}

func TestSequenceEnergyTime(t *testing.T) {
	l := RateLevel{Rate: 1, Energy: 2, Time: 1}
	seq := []Assignment{
		{Task: Task{Cycles: 1}, Level: l},
		{Task: Task{Cycles: 3}, Level: l},
	}
	j, mk, ta := SequenceEnergyTime(seq)
	if j != 8 || mk != 4 || ta != 1+4 {
		t.Errorf("got (%v,%v,%v), want (8,4,5)", j, mk, ta)
	}
}

// Property (Eq. 8 vs Eq. 9 equivalence): summing waiting-time costs per
// task equals attributing each task's delay to all tasks at or behind
// it.
func TestCostRewriteEquivalence(t *testing.T) {
	cp := CostParams{Re: 0.1, Rt: 0.4}
	rt := MustRateTable(table2Levels())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		seq := make([]Assignment, n)
		for i := range seq {
			seq[i] = Assignment{
				Task:  Task{ID: i, Cycles: 0.1 + rng.Float64()*10},
				Level: rt.Level(rng.Intn(rt.Len())),
			}
		}
		_, _, direct := cp.SequenceCost(seq, 0)
		// Eq. 11: C = sum over k of C(k, p_k) * L_k.
		var rewritten float64
		for k := 1; k <= n; k++ {
			a := seq[k-1]
			rewritten += cp.PositionCost(k, n, a.Level) * a.Task.Cycles
		}
		return math.Abs(direct-rewritten) <= 1e-9*math.Max(1, math.Abs(direct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
