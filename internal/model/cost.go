package model

import (
	"fmt"
	"math"
)

// CostParams holds the two monetary conversion constants of the cost
// model (Section III-B).
type CostParams struct {
	// Re is the cost of one joule of energy, in cents (the
	// electricity-bill rate).
	Re float64
	// Rt is the amount paid per second a user waits for a task, in
	// cents (an opportunity cost).
	Rt float64
}

// Validate checks that both constants are positive, as the model
// requires.
func (cp CostParams) Validate() error {
	if cp.Re <= 0 || math.IsNaN(cp.Re) || math.IsInf(cp.Re, 0) {
		return fmt.Errorf("model: Re must be positive and finite, got %v", cp.Re)
	}
	if cp.Rt <= 0 || math.IsNaN(cp.Rt) || math.IsInf(cp.Rt, 0) {
		return fmt.Errorf("model: Rt must be positive and finite, got %v", cp.Rt)
	}
	return nil
}

// TaskEnergy returns e_k = L_k * E(p) in joules (Eq. 1).
func TaskEnergy(cycles float64, level RateLevel) float64 { return cycles * level.Energy }

// TaskTime returns t_k = L_k * T(p) in seconds (Eq. 2).
func TaskTime(cycles float64, level RateLevel) float64 { return cycles * level.Time }

// PositionCost is C(k, p) = Re*E(p) + (n-k+1)*Rt*T(p) (Eq. 12): the
// per-cycle cost of running the task at forward position k of n at rate
// p, accounting for the delay it inflicts on itself and on the n-k
// tasks behind it.
func (cp CostParams) PositionCost(k, n int, level RateLevel) float64 {
	return cp.Re*level.Energy + float64(n-k+1)*cp.Rt*level.Time
}

// BackwardPositionCost is C^B(k, p) = Re*E(p) + k*Rt*T(p) (Eq. 20): the
// per-cycle cost at backward position k (k = 1 is the last task to run,
// so only its own waiting time matters). Backward indexing removes the
// dependence on n.
func (cp CostParams) BackwardPositionCost(k int, level RateLevel) float64 {
	return cp.Re*level.Energy + float64(k)*cp.Rt*level.Time
}

// BestBackwardLevel returns C^B(k) = min over p of C^B(k, p) and the
// level achieving it, choosing the higher processing rate in case of a
// tie (the paper's tie-break rule). It is the naive Θ(|P|) evaluation;
// package envelope computes all positions at once.
func (cp CostParams) BestBackwardLevel(k int, rt *RateTable) (RateLevel, float64) {
	best := rt.Min()
	bestCost := cp.BackwardPositionCost(k, best)
	for i := 1; i < rt.Len(); i++ {
		l := rt.Level(i)
		if c := cp.BackwardPositionCost(k, l); c <= bestCost {
			// <= prefers the higher rate on ties because levels
			// are scanned in ascending rate order.
			best, bestCost = l, c
		}
	}
	return best, bestCost
}

// Assignment pairs a task with the rate level chosen for it.
type Assignment struct {
	Task  Task
	Level RateLevel
}

// SequenceCost evaluates the analytic cost model (Eq. 8) for one core
// executing seq in order: each task's energy cost plus Rt times its
// turnaround time (waiting for all predecessors plus its own run).
// startTime shifts every turnaround by the core's first-available time.
// It returns the energy cost, temporal cost, and their sum, in cents.
func (cp CostParams) SequenceCost(seq []Assignment, startTime float64) (energyCost, timeCost, total float64) {
	elapsed := startTime
	for _, a := range seq {
		energyCost += cp.Re * TaskEnergy(a.Task.Cycles, a.Level)
		elapsed += TaskTime(a.Task.Cycles, a.Level)
		timeCost += cp.Rt * elapsed
	}
	return energyCost, timeCost, energyCost + timeCost
}

// SequenceEnergyTime returns the raw physical totals of a sequence: the
// energy in joules and the makespan in seconds, plus the sum of
// turnaround times in seconds.
func SequenceEnergyTime(seq []Assignment) (joules, makespan, turnaroundSum float64) {
	for _, a := range seq {
		joules += TaskEnergy(a.Task.Cycles, a.Level)
		makespan += TaskTime(a.Task.Cycles, a.Level)
		turnaroundSum += makespan
	}
	return joules, makespan, turnaroundSum
}
