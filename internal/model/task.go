package model

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Task is a sequence of instructions to be executed by one core, as in
// Section II-A of the paper: j_k = (L_k, A_k, D_k).
type Task struct {
	// ID identifies the task. The scheduling algorithms treat it as
	// opaque; generators assign sequential IDs.
	ID int
	// Name is an optional human-readable label (e.g. the SPEC
	// benchmark the task models).
	Name string
	// Cycles is L_k, the number of Gcycles needed to complete the
	// task. It must be positive.
	Cycles float64
	// Arrival is A_k in seconds. Batch-mode tasks all have Arrival 0.
	Arrival float64
	// Deadline is D_k in seconds. Tasks without a time constraint use
	// NoDeadline (+Inf).
	Deadline float64
	// Interactive marks online-mode tasks initiated by a user that
	// must be completed as soon as possible. Interactive tasks have
	// higher priority than non-interactive ones and may preempt them.
	Interactive bool
}

// NoDeadline is the Deadline value of a task with no time constraint.
var NoDeadline = math.Inf(1)

// HasDeadline reports whether the task carries a finite deadline.
func (t Task) HasDeadline() bool { return !math.IsInf(t.Deadline, 1) }

// Validate checks the task invariants from the task model.
func (t Task) Validate() error {
	switch {
	case t.Cycles <= 0 || math.IsNaN(t.Cycles) || math.IsInf(t.Cycles, 0):
		return fmt.Errorf("model: task %d: cycles must be positive and finite, got %v", t.ID, t.Cycles)
	case t.Arrival < 0 || math.IsNaN(t.Arrival):
		return fmt.Errorf("model: task %d: arrival must be non-negative, got %v", t.ID, t.Arrival)
	case t.HasDeadline() && t.Deadline <= t.Arrival:
		return fmt.Errorf("model: task %d: deadline %v must exceed arrival %v", t.ID, t.Deadline, t.Arrival)
	case math.IsNaN(t.Deadline):
		return fmt.Errorf("model: task %d: deadline is NaN", t.ID)
	}
	return nil
}

func (t Task) String() string {
	kind := "batch"
	if t.Interactive {
		kind = "interactive"
	}
	if t.Name != "" {
		return fmt.Sprintf("task %d (%s, %s, %.3f Gcyc)", t.ID, t.Name, kind, t.Cycles)
	}
	return fmt.Sprintf("task %d (%s, %.3f Gcyc)", t.ID, kind, t.Cycles)
}

// TaskSet is an ordered collection of tasks.
type TaskSet []Task

// Validate checks every task and that IDs are unique.
func (ts TaskSet) Validate() error {
	if len(ts) == 0 {
		return errors.New("model: empty task set")
	}
	seen := make(map[int]bool, len(ts))
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("model: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// TotalCycles returns the sum of L_k over the set, in Gcycles.
func (ts TaskSet) TotalCycles() float64 {
	var sum float64
	for _, t := range ts {
		sum += t.Cycles
	}
	return sum
}

// Clone returns a deep copy of the set.
func (ts TaskSet) Clone() TaskSet {
	out := make(TaskSet, len(ts))
	copy(out, ts)
	return out
}

// SortByCyclesAsc sorts tasks in non-decreasing order of cycles (the
// optimal single-core execution order of Theorem 3), breaking ties by ID
// for determinism.
func (ts TaskSet) SortByCyclesAsc() {
	sort.SliceStable(ts, func(i, j int) bool {
		//dvfslint:allow floatcmp sort tie-break needs a strict weak order; epsilon equality is intransitive
		if ts[i].Cycles != ts[j].Cycles {
			return ts[i].Cycles < ts[j].Cycles
		}
		return ts[i].ID < ts[j].ID
	})
}

// SortByCyclesDesc sorts tasks in non-increasing order of cycles (the
// assignment order used by Workload Based Greedy), breaking ties by ID.
func (ts TaskSet) SortByCyclesDesc() {
	sort.SliceStable(ts, func(i, j int) bool {
		//dvfslint:allow floatcmp sort tie-break needs a strict weak order; epsilon equality is intransitive
		if ts[i].Cycles != ts[j].Cycles {
			return ts[i].Cycles > ts[j].Cycles
		}
		return ts[i].ID < ts[j].ID
	})
}

// ByArrival sorts tasks by arrival time (stable, ties by ID), the order
// an online scheduler observes them.
func (ts TaskSet) ByArrival() {
	sort.SliceStable(ts, func(i, j int) bool {
		//dvfslint:allow floatcmp sort tie-break needs a strict weak order; epsilon equality is intransitive
		if ts[i].Arrival != ts[j].Arrival {
			return ts[i].Arrival < ts[j].Arrival
		}
		return ts[i].ID < ts[j].ID
	})
}

// Split partitions the set into interactive and non-interactive subsets,
// preserving order.
func (ts TaskSet) Split() (interactive, nonInteractive TaskSet) {
	for _, t := range ts {
		if t.Interactive {
			interactive = append(interactive, t)
		} else {
			nonInteractive = append(nonInteractive, t)
		}
	}
	return interactive, nonInteractive
}
