package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// table2Levels mirrors Table II of the paper.
func table2Levels() []RateLevel {
	return []RateLevel{
		{Rate: 1.6, Energy: 3.375, Time: 0.625},
		{Rate: 2.0, Energy: 4.22, Time: 0.5},
		{Rate: 2.4, Energy: 5.0, Time: 0.42},
		{Rate: 2.8, Energy: 6.0, Time: 0.36},
		{Rate: 3.0, Energy: 7.1, Time: 0.33},
	}
}

func TestNewRateTableSortsAndValidates(t *testing.T) {
	levels := table2Levels()
	// Shuffle input order; NewRateTable must sort.
	levels[0], levels[4] = levels[4], levels[0]
	rt, err := NewRateTable(levels)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 5 {
		t.Fatalf("Len = %d, want 5", rt.Len())
	}
	if rt.Min().Rate != 1.6 || rt.Max().Rate != 3.0 {
		t.Errorf("Min/Max = %v/%v", rt.Min().Rate, rt.Max().Rate)
	}
	for i := 1; i < rt.Len(); i++ {
		if rt.Level(i).Rate <= rt.Level(i-1).Rate {
			t.Error("levels not sorted ascending")
		}
	}
}

func TestNewRateTableRejectsBadTables(t *testing.T) {
	cases := []struct {
		name   string
		levels []RateLevel
	}{
		{"empty", nil},
		{"zero rate", []RateLevel{{Rate: 0, Energy: 1, Time: 1}}},
		{"negative energy", []RateLevel{{Rate: 1, Energy: -1, Time: 1}}},
		{"zero time", []RateLevel{{Rate: 1, Energy: 1, Time: 0}}},
		{"duplicate rate", []RateLevel{
			{Rate: 1, Energy: 1, Time: 1},
			{Rate: 1, Energy: 2, Time: 0.5},
		}},
		{"non-increasing energy", []RateLevel{
			{Rate: 1, Energy: 2, Time: 1},
			{Rate: 2, Energy: 1, Time: 0.5},
		}},
		{"non-decreasing time", []RateLevel{
			{Rate: 1, Energy: 1, Time: 0.5},
			{Rate: 2, Energy: 2, Time: 0.5},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewRateTable(c.levels); err == nil {
				t.Errorf("expected error for %v", c.levels)
			}
		})
	}
}

func TestMustRateTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRateTable did not panic on invalid input")
		}
	}()
	MustRateTable(nil)
}

func TestUniformRateTable(t *testing.T) {
	rt, err := UniformRateTable(1.0, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 3 {
		t.Fatalf("Len = %d", rt.Len())
	}
	// E(p) = p^2, T(p) = 1/p.
	l := rt.Level(1) // rate 2
	if l.Rate != 2 || l.Energy != 4 || l.Time != 0.5 {
		t.Errorf("level = %+v", l)
	}
	if _, err := UniformRateTable(1.0, -1); err == nil {
		t.Error("expected error for negative rate")
	}
	if _, err := UniformRateTable(1.0); err == nil {
		t.Error("expected error for empty rates")
	}
}

func TestIndexOfAndNearestBelow(t *testing.T) {
	rt := MustRateTable(table2Levels())
	if i := rt.IndexOf(2.4); i != 2 {
		t.Errorf("IndexOf(2.4) = %d, want 2", i)
	}
	if i := rt.IndexOf(9.9); i != -1 {
		t.Errorf("IndexOf(9.9) = %d, want -1", i)
	}
	if l := rt.NearestBelow(2.5); l.Rate != 2.4 {
		t.Errorf("NearestBelow(2.5) = %v, want 2.4", l.Rate)
	}
	if l := rt.NearestBelow(0.5); l.Rate != 1.6 {
		t.Errorf("NearestBelow(0.5) = %v, want slowest 1.6", l.Rate)
	}
	if l := rt.NearestBelow(99); l.Rate != 3.0 {
		t.Errorf("NearestBelow(99) = %v, want 3.0", l.Rate)
	}
}

func TestRestrict(t *testing.T) {
	rt := MustRateTable(table2Levels())
	// The Power Saving baseline keeps the lower half: 1.6, 2.0, 2.4.
	ps, err := rt.RestrictMaxRate(2.4)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 3 || ps.Max().Rate != 2.4 {
		t.Errorf("restricted table: len=%d max=%v", ps.Len(), ps.Max().Rate)
	}
	if _, err := rt.RestrictMaxRate(0.1); err == nil {
		t.Error("restricting away all levels should error")
	}
	// Original table unchanged.
	if rt.Len() != 5 {
		t.Error("Restrict mutated the receiver")
	}
}

func TestLevelsReturnsCopy(t *testing.T) {
	rt := MustRateTable(table2Levels())
	ls := rt.Levels()
	ls[0].Rate = 99
	if rt.Level(0).Rate == 99 {
		t.Error("Levels() exposed internal slice")
	}
}

func TestRateTableString(t *testing.T) {
	rt := MustRateTable(table2Levels())
	if rt.String() == "" {
		t.Error("empty String")
	}
}

// Property: for random valid uniform tables, NearestBelow(r) is always
// <= r when r >= slowest rate, and IndexOf finds every level.
func TestRateTableProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		rates := make([]float64, n)
		used := map[float64]bool{}
		for i := range rates {
			r := 0.1 + rng.Float64()*5
			for used[r] {
				r += 0.01
			}
			used[r] = true
			rates[i] = r
		}
		rt, err := UniformRateTable(1.0, rates...)
		if err != nil {
			return false
		}
		for i := 0; i < rt.Len(); i++ {
			if rt.IndexOf(rt.Level(i).Rate) != i {
				return false
			}
		}
		q := rt.Min().Rate + rng.Float64()*(rt.Max().Rate-rt.Min().Rate)
		if rt.NearestBelow(q).Rate > q {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
