package model

import (
	"fmt"
	"math"
	"sort"
)

// RateLevel is one discrete processing rate a core can use, together
// with its per-cycle energy and time functions E(p) and T(p).
type RateLevel struct {
	// Rate is p in GHz.
	Rate float64
	// Energy is E(p) in nJ/cycle. E must be strictly increasing in p.
	Energy float64
	// Time is T(p) in ns/cycle. T must be strictly decreasing in p.
	// For a simple clock model T(p) = 1/p.
	Time float64
}

// RateTable is the non-empty set P = {p1 < p2 < ... < p|P|} of discrete
// processing rates of one core, with E and T defined per level. The
// zero value is not usable; construct with NewRateTable or a platform
// preset and call Validate.
type RateTable struct {
	levels []RateLevel
}

// NewRateTable builds a RateTable from levels, sorting them by rate.
// It returns an error if the table violates the paper's model
// assumptions: rates positive and distinct, 0 < E(p1) < E(p2) < ... and
// 0 < ... < T(p2) < T(p1).
func NewRateTable(levels []RateLevel) (*RateTable, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("model: rate table must be non-empty")
	}
	ls := make([]RateLevel, len(levels))
	copy(ls, levels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Rate < ls[j].Rate })
	rt := &RateTable{levels: ls}
	if err := rt.Validate(); err != nil {
		return nil, err
	}
	return rt, nil
}

// MustRateTable is NewRateTable that panics on error; intended for
// package-level platform presets built from literal tables.
func MustRateTable(levels []RateLevel) *RateTable {
	rt, err := NewRateTable(levels)
	if err != nil {
		panic(err)
	}
	return rt
}

// UniformRateTable builds a table with T(p) = 1/p and E(p) = base*p^2
// (dynamic power proportional to the square of frequency, the classical
// model the paper's NP-completeness construction assumes), for the
// given rates in GHz.
func UniformRateTable(base float64, rates ...float64) (*RateTable, error) {
	levels := make([]RateLevel, 0, len(rates))
	for _, p := range rates {
		if p <= 0 {
			return nil, fmt.Errorf("model: non-positive rate %v", p)
		}
		levels = append(levels, RateLevel{Rate: p, Energy: base * p * p, Time: 1 / p})
	}
	return NewRateTable(levels)
}

// Validate checks the monotonicity assumptions of Section II-B/C.
func (rt *RateTable) Validate() error {
	if rt == nil || len(rt.levels) == 0 {
		return fmt.Errorf("model: rate table must be non-empty")
	}
	for i, l := range rt.levels {
		if l.Rate <= 0 || math.IsNaN(l.Rate) || math.IsInf(l.Rate, 0) {
			return fmt.Errorf("model: level %d: rate must be positive and finite, got %v", i, l.Rate)
		}
		if l.Energy <= 0 || math.IsNaN(l.Energy) {
			return fmt.Errorf("model: level %d: E(p) must be positive, got %v", i, l.Energy)
		}
		if l.Time <= 0 || math.IsNaN(l.Time) {
			return fmt.Errorf("model: level %d: T(p) must be positive, got %v", i, l.Time)
		}
		if i > 0 {
			prev := rt.levels[i-1]
			//dvfslint:allow floatcmp level-table rates are literal hardware steps; duplicate detection must be exact
			if l.Rate == prev.Rate {
				return fmt.Errorf("model: duplicate rate %v", l.Rate)
			}
			if l.Energy <= prev.Energy {
				return fmt.Errorf("model: E(p) must be strictly increasing: E(%v)=%v <= E(%v)=%v",
					l.Rate, l.Energy, prev.Rate, prev.Energy)
			}
			if l.Time >= prev.Time {
				return fmt.Errorf("model: T(p) must be strictly decreasing: T(%v)=%v >= T(%v)=%v",
					l.Rate, l.Time, prev.Rate, prev.Time)
			}
		}
	}
	return nil
}

// Len returns |P|.
func (rt *RateTable) Len() int { return len(rt.levels) }

// Level returns the i-th level, 0-indexed from slowest.
func (rt *RateTable) Level(i int) RateLevel { return rt.levels[i] }

// Levels returns a copy of all levels in ascending rate order.
func (rt *RateTable) Levels() []RateLevel {
	out := make([]RateLevel, len(rt.levels))
	copy(out, rt.levels)
	return out
}

// Min returns the slowest level p1.
func (rt *RateTable) Min() RateLevel { return rt.levels[0] }

// Max returns the fastest level p|P| (used for interactive tasks by
// Least Marginal Cost, and by Opportunistic Load Balancing).
func (rt *RateTable) Max() RateLevel { return rt.levels[len(rt.levels)-1] }

// IndexOf returns the index of the level with the given rate, or -1.
func (rt *RateTable) IndexOf(rate float64) int {
	for i, l := range rt.levels {
		//dvfslint:allow floatcmp exact table lookup: callers pass back rates copied verbatim from a level
		if l.Rate == rate {
			return i
		}
	}
	return -1
}

// NearestBelow returns the highest level whose rate does not exceed
// rate, or the slowest level if rate is below all of them. Governors
// use it to clamp requested frequencies to hardware steps.
func (rt *RateTable) NearestBelow(rate float64) RateLevel {
	best := rt.levels[0]
	for _, l := range rt.levels {
		if l.Rate <= rate {
			best = l
		}
	}
	return best
}

// Restrict returns a new table keeping only levels for which keep
// returns true. It is how the Power Saving baseline limits a core to
// the lower half of its frequency range.
func (rt *RateTable) Restrict(keep func(RateLevel) bool) (*RateTable, error) {
	var ls []RateLevel
	for _, l := range rt.levels {
		if keep(l) {
			ls = append(ls, l)
		}
	}
	return NewRateTable(ls)
}

// RestrictMaxRate keeps only levels with Rate <= maxRate.
func (rt *RateTable) RestrictMaxRate(maxRate float64) (*RateTable, error) {
	return rt.Restrict(func(l RateLevel) bool { return l.Rate <= maxRate })
}

func (rt *RateTable) String() string {
	s := "P={"
	for i, l := range rt.levels {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3g", l.Rate)
	}
	return s + "} GHz"
}
