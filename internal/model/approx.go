package model

import "math"

// DefaultEps is the tolerance the schedulers use when testing two
// computed costs, rates or instants for equality. Rate tables space
// their levels orders of magnitude further apart than this, so
// approximate identity on table-derived values coincides with exact
// identity while staying robust to re-association of the arithmetic
// that produced them.
const DefaultEps = 1e-9

// ApproxEq reports whether a and b are equal within eps, using a
// hybrid absolute/relative tolerance: |a-b| <= eps*max(1, |a|, |b|).
// Values below 1 compare with absolute tolerance eps, larger values
// with relative tolerance, so the test is meaningful across the
// model's scales (nJ/cycle energies up to multi-hour turnarounds).
//
// NaN is equal to nothing, including itself; infinities are equal only
// to infinities of the same sign. eps must be non-negative.
func ApproxEq(a, b, eps float64) bool {
	if a == b { //dvfslint:allow floatcmp this is the epsilon helper's exact fast path (also catches equal infinities)
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= eps*scale
}
