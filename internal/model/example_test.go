package model_test

import (
	"fmt"

	"dvfsched/internal/model"
)

// The cost model prices a task's energy and the waiting it causes:
// the per-cycle position cost C^B(k, p) falls out of Eq. 11.
func ExampleCostParams_BackwardPositionCost() {
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	slow := model.RateLevel{Rate: 1.6, Energy: 3.375, Time: 0.625}
	fast := model.RateLevel{Rate: 3.0, Energy: 7.1, Time: 0.33}
	// A task that runs last (k=1) is cheapest slow; one with 19
	// tasks behind it (k=20) is cheapest fast.
	fmt.Printf("k=1:  slow %.3f, fast %.3f\n",
		params.BackwardPositionCost(1, slow), params.BackwardPositionCost(1, fast))
	fmt.Printf("k=20: slow %.3f, fast %.3f\n",
		params.BackwardPositionCost(20, slow), params.BackwardPositionCost(20, fast))
	// Output:
	// k=1:  slow 0.588, fast 0.842
	// k=20: slow 5.338, fast 3.350
}

// A rate table validates the paper's monotonicity assumptions:
// faster levels must cost more energy per cycle and less time.
func ExampleNewRateTable() {
	_, err := model.NewRateTable([]model.RateLevel{
		{Rate: 1, Energy: 2, Time: 1},
		{Rate: 2, Energy: 1, Time: 0.5}, // E(p) must increase
	})
	fmt.Println(err != nil)
	// Output:
	// true
}
