package model

import (
	"math"
	"testing"
)

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid batch", Task{ID: 1, Cycles: 10, Deadline: NoDeadline}, true},
		{"valid with deadline", Task{ID: 2, Cycles: 1, Arrival: 0, Deadline: 5}, true},
		{"zero cycles", Task{ID: 3, Cycles: 0, Deadline: NoDeadline}, false},
		{"negative cycles", Task{ID: 4, Cycles: -1, Deadline: NoDeadline}, false},
		{"NaN cycles", Task{ID: 5, Cycles: math.NaN(), Deadline: NoDeadline}, false},
		{"inf cycles", Task{ID: 6, Cycles: math.Inf(1), Deadline: NoDeadline}, false},
		{"negative arrival", Task{ID: 7, Cycles: 1, Arrival: -1, Deadline: NoDeadline}, false},
		{"deadline before arrival", Task{ID: 8, Cycles: 1, Arrival: 10, Deadline: 5}, false},
		{"deadline equals arrival", Task{ID: 9, Cycles: 1, Arrival: 5, Deadline: 5}, false},
		{"NaN deadline", Task{ID: 10, Cycles: 1, Deadline: math.NaN()}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.task.Validate()
			if c.ok && err != nil {
				t.Fatalf("expected valid, got %v", err)
			}
			if !c.ok && err == nil {
				t.Fatalf("expected error for %+v", c.task)
			}
		})
	}
}

func TestTaskHasDeadline(t *testing.T) {
	if (Task{Deadline: NoDeadline}).HasDeadline() {
		t.Error("NoDeadline task reports HasDeadline")
	}
	if !(Task{Deadline: 3}).HasDeadline() {
		t.Error("finite deadline not detected")
	}
}

func TestTaskString(t *testing.T) {
	s := Task{ID: 7, Name: "bzip", Cycles: 1.5, Interactive: true}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	s2 := Task{ID: 8, Cycles: 2}.String()
	if s2 == "" || s2 == s {
		t.Fatal("unexpected String output")
	}
}

func TestTaskSetValidate(t *testing.T) {
	if err := (TaskSet{}).Validate(); err == nil {
		t.Error("empty set should be invalid")
	}
	dup := TaskSet{
		{ID: 1, Cycles: 1, Deadline: NoDeadline},
		{ID: 1, Cycles: 2, Deadline: NoDeadline},
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate IDs should be invalid")
	}
	good := TaskSet{
		{ID: 1, Cycles: 1, Deadline: NoDeadline},
		{ID: 2, Cycles: 2, Deadline: NoDeadline},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestTaskSetTotalCycles(t *testing.T) {
	ts := TaskSet{{Cycles: 1.5}, {Cycles: 2.5}, {Cycles: 3}}
	if got := ts.TotalCycles(); got != 7 {
		t.Errorf("TotalCycles = %v, want 7", got)
	}
	if got := (TaskSet{}).TotalCycles(); got != 0 {
		t.Errorf("empty TotalCycles = %v, want 0", got)
	}
}

func TestTaskSetSorts(t *testing.T) {
	mk := func() TaskSet {
		return TaskSet{
			{ID: 1, Cycles: 3},
			{ID: 2, Cycles: 1},
			{ID: 3, Cycles: 2},
			{ID: 4, Cycles: 2},
		}
	}
	asc := mk()
	asc.SortByCyclesAsc()
	wantAsc := []int{2, 3, 4, 1}
	for i, id := range wantAsc {
		if asc[i].ID != id {
			t.Fatalf("asc[%d].ID = %d, want %d", i, asc[i].ID, id)
		}
	}
	desc := mk()
	desc.SortByCyclesDesc()
	wantDesc := []int{1, 3, 4, 2}
	for i, id := range wantDesc {
		if desc[i].ID != id {
			t.Fatalf("desc[%d].ID = %d, want %d", i, desc[i].ID, id)
		}
	}
}

func TestTaskSetByArrival(t *testing.T) {
	ts := TaskSet{
		{ID: 1, Arrival: 5},
		{ID: 2, Arrival: 1},
		{ID: 3, Arrival: 5},
	}
	ts.ByArrival()
	want := []int{2, 1, 3}
	for i, id := range want {
		if ts[i].ID != id {
			t.Fatalf("ByArrival[%d].ID = %d, want %d", i, ts[i].ID, id)
		}
	}
}

func TestTaskSetClone(t *testing.T) {
	ts := TaskSet{{ID: 1, Cycles: 1}}
	c := ts.Clone()
	c[0].Cycles = 99
	if ts[0].Cycles != 1 {
		t.Error("Clone is not a deep copy of the slice")
	}
}

func TestTaskSetSplit(t *testing.T) {
	ts := TaskSet{
		{ID: 1, Interactive: true},
		{ID: 2},
		{ID: 3, Interactive: true},
	}
	in, non := ts.Split()
	if len(in) != 2 || len(non) != 1 {
		t.Fatalf("Split sizes = %d, %d; want 2, 1", len(in), len(non))
	}
	if in[0].ID != 1 || in[1].ID != 3 || non[0].ID != 2 {
		t.Error("Split did not preserve order")
	}
}
