// Package model defines the paper's core abstractions: tasks, discrete
// per-core processing rates with their energy/time-per-cycle functions,
// and the monetary cost model combining energy cost and temporal cost.
//
// Units are chosen so Table II of the paper reads literally:
//
//   - task lengths L are in Gcycles (10^9 cycles),
//   - processing rates p are in GHz,
//   - T(p) is in ns/cycle, so time[s] = L * T(p),
//   - E(p) is in nJ/cycle, so energy[J] = L * E(p),
//   - Re is cents per joule, Rt is cents per second, costs are in cents.
package model
