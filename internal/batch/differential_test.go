package batch

import (
	"math"
	"math/rand"
	"testing"

	"dvfsched/internal/exact"
	"dvfsched/internal/model"
)

// randomRates builds a valid random rate table for the differential
// tests (rates and E strictly increasing, T strictly decreasing).
func randomRates(rng *rand.Rand, n int) *model.RateTable {
	levels := make([]model.RateLevel, n)
	rate := 0.3 + rng.Float64()*0.4
	energy := 0.2 + rng.Float64()
	time := 3 + rng.Float64()*4
	for i := range levels {
		levels[i] = model.RateLevel{Rate: rate, Energy: energy, Time: time}
		rate += 0.2 + rng.Float64()
		energy += 0.1 + rng.Float64()*1.5
		time *= 0.5 + rng.Float64()*0.4
	}
	return model.MustRateTable(levels)
}

func randomBatch(rng *rand.Rand, n int) model.TaskSet {
	tasks := make(model.TaskSet, n)
	for i := range tasks {
		tasks[i] = model.Task{ID: i + 1, Cycles: 1 + rng.Float64()*40, Deadline: model.NoDeadline}
	}
	return tasks
}

// TestWBGMatchesExactHomogeneous is the paper's optimality claim
// (Theorem 5) checked differentially: on random homogeneous instances
// small enough for the exhaustive solver, Workload Based Greedy's cost
// equals the optimum over all R^n assignments and n! per-core orders.
func TestWBGMatchesExactHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		nCores := 1 + rng.Intn(3)
		nTasks := 1 + rng.Intn(8)
		rates := randomRates(rng, 1+rng.Intn(5))
		params := model.CostParams{Re: 0.05 + rng.Float64(), Rt: 0.05 + rng.Float64()}
		tasks := randomBatch(rng, nTasks)

		plan, err := WBG(params, HomogeneousCores(nCores, rates), tasks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, _, got := plan.Cost()

		tables := make([]*model.RateTable, nCores)
		for i := range tables {
			tables[i] = rates
		}
		want, err := exact.OptimalMultiCoreCost(params, tables, tasks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("trial %d: WBG cost %v != exact optimum %v (%d tasks, %d cores, %d levels)",
				trial, got, want, nTasks, nCores, rates.Len())
		}
	}
}

// TestWBGNeverBeatsExactHeterogeneous checks soundness outside WBG's
// optimality domain: with per-core rate tables the greedy result may
// be suboptimal, but it must never cost less than the exhaustive
// optimum (which would mean one of the two sides is miscounting).
func TestWBGNeverBeatsExactHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		nCores := 2 + rng.Intn(2)
		nTasks := 1 + rng.Intn(7)
		params := model.CostParams{Re: 0.05 + rng.Float64(), Rt: 0.05 + rng.Float64()}
		tasks := randomBatch(rng, nTasks)

		cores := make([]CoreSpec, nCores)
		tables := make([]*model.RateTable, nCores)
		for i := range cores {
			rt := randomRates(rng, 1+rng.Intn(4))
			cores[i] = CoreSpec{Rates: rt}
			tables[i] = rt
		}

		plan, err := WBG(params, cores, tasks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, _, got := plan.Cost()
		want, err := exact.OptimalMultiCoreCost(params, tables, tasks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got < want*(1-1e-9) {
			t.Fatalf("trial %d: WBG cost %v beats the exhaustive optimum %v — impossible", trial, got, want)
		}
	}
}
