package batch_test

import (
	"fmt"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// Schedule four jobs on two cores with Workload Based Greedy: each
// core runs shortest-first, and rates follow queue positions.
func ExampleWBG() {
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	tasks := model.TaskSet{
		{ID: 1, Name: "a", Cycles: 10, Deadline: model.NoDeadline},
		{ID: 2, Name: "b", Cycles: 500, Deadline: model.NoDeadline},
		{ID: 3, Name: "c", Cycles: 40, Deadline: model.NoDeadline},
		{ID: 4, Name: "d", Cycles: 200, Deadline: model.NoDeadline},
	}
	plan, err := batch.WBG(params, batch.HomogeneousCores(2, platform.TableII()), tasks)
	if err != nil {
		panic(err)
	}
	for _, core := range plan.Cores {
		fmt.Printf("core %d:", core.Core)
		for _, a := range core.Sequence {
			fmt.Printf(" %s@%.1f", a.Task.Name, a.Level.Rate)
		}
		fmt.Println()
	}
	_, _, total := plan.Cost()
	fmt.Printf("total cost %.1f cents\n", total)
	// Output:
	// core 0: c@2.0 b@1.6
	// core 1: a@2.0 d@1.6
	// total cost 452.4 cents
}
