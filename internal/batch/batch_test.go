package batch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsched/internal/model"
)

func table2() *model.RateTable {
	return model.MustRateTable([]model.RateLevel{
		{Rate: 1.6, Energy: 3.375, Time: 0.625},
		{Rate: 2.0, Energy: 4.22, Time: 0.5},
		{Rate: 2.4, Energy: 5.0, Time: 0.42},
		{Rate: 2.8, Energy: 6.0, Time: 0.36},
		{Rate: 3.0, Energy: 7.1, Time: 0.33},
	})
}

var paperParams = model.CostParams{Re: 0.1, Rt: 0.4}

func randomTasks(rng *rand.Rand, n int) model.TaskSet {
	ts := make(model.TaskSet, n)
	for i := range ts {
		ts[i] = model.Task{ID: i, Cycles: 0.1 + rng.Float64()*100, Deadline: model.NoDeadline}
	}
	return ts
}

func TestSingleCoreOrdersShortestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tasks := randomTasks(rng, 50)
	plan, err := SingleCore(paperParams, table2(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	seq := plan.Cores[0].Sequence
	if len(seq) != 50 {
		t.Fatalf("len = %d", len(seq))
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].Task.Cycles < seq[i-1].Task.Cycles {
			t.Fatalf("execution order not non-decreasing at %d", i)
		}
	}
	// Rates must be non-increasing along the execution order (front
	// tasks have larger backward positions, hence faster rates).
	for i := 1; i < len(seq); i++ {
		if seq[i].Level.Rate > seq[i-1].Level.Rate {
			t.Fatalf("rates increase along execution order at %d", i)
		}
	}
}

func TestSingleCoreMatchesPerPositionOptimum(t *testing.T) {
	// Each task's level must equal the naive argmin for its backward
	// position.
	rng := rand.New(rand.NewSource(2))
	tasks := randomTasks(rng, 23)
	rt := table2()
	plan, err := SingleCore(paperParams, rt, tasks)
	if err != nil {
		t.Fatal(err)
	}
	seq := plan.Cores[0].Sequence
	n := len(seq)
	for i, a := range seq {
		k := n - i // backward position
		want, _ := paperParams.BestBackwardLevel(k, rt)
		if a.Level.Rate != want.Rate {
			t.Fatalf("position %d (backward %d): got %v want %v", i, k, a.Level.Rate, want.Rate)
		}
	}
}

func TestSingleCoreRejectsInvalid(t *testing.T) {
	if _, err := SingleCore(paperParams, table2(), nil); err == nil {
		t.Error("empty task set accepted")
	}
	if _, err := SingleCore(model.CostParams{}, table2(), randomTasks(rand.New(rand.NewSource(3)), 2)); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestHomogeneousEqualsWBGCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		tasks := randomTasks(rng, 1+rng.Intn(40))
		r := 1 + rng.Intn(6)
		hp, err := Homogeneous(paperParams, table2(), r, tasks)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := WBG(paperParams, HomogeneousCores(r, table2()), tasks)
		if err != nil {
			t.Fatal(err)
		}
		_, _, hc := hp.Cost()
		_, _, wc := wp.Cost()
		if math.Abs(hc-wc) > 1e-9*math.Max(1, hc) {
			t.Fatalf("trial %d: homogeneous cost %v != WBG cost %v", trial, hc, wc)
		}
		if err := hp.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := wp.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWBGSchedulesAllTasksOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tasks := randomTasks(rng, 24)
	plan, err := WBG(paperParams, HomogeneousCores(4, table2()), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumTasks() != 24 {
		t.Errorf("NumTasks = %d", plan.NumTasks())
	}
	if err := plan.Validate(); err != nil {
		t.Error(err)
	}
	// Each core's order is shortest-first.
	for _, c := range plan.Cores {
		for i := 1; i < len(c.Sequence); i++ {
			if c.Sequence[i].Task.Cycles < c.Sequence[i-1].Task.Cycles {
				t.Errorf("core %d not shortest-first", c.Core)
			}
		}
	}
}

func TestWBGHeterogeneousPrefersCheaperCore(t *testing.T) {
	// An efficient core (low E, low T) should receive all the load
	// while positions on it stay cheaper than the inefficient core's
	// first position.
	cheap := model.MustRateTable([]model.RateLevel{{Rate: 2, Energy: 1, Time: 0.5}})
	pricey := model.MustRateTable([]model.RateLevel{{Rate: 1, Energy: 10, Time: 1}})
	tasks := model.TaskSet{
		{ID: 1, Cycles: 1, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 2, Deadline: model.NoDeadline},
	}
	plan, err := WBG(model.CostParams{Re: 1, Rt: 0.1}, []CoreSpec{{Rates: pricey}, {Rates: cheap}}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	// C_cheap(k) = 1 + 0.05k; C_pricey(k) = 10 + 0.1k. Both tasks
	// should go to the cheap core.
	if len(plan.Cores[1].Sequence) != 2 || len(plan.Cores[0].Sequence) != 0 {
		t.Errorf("assignment: core0=%d core1=%d tasks", len(plan.Cores[0].Sequence), len(plan.Cores[1].Sequence))
	}
}

func TestWBGRejectsInvalid(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 1, Deadline: model.NoDeadline}}
	if _, err := WBG(paperParams, nil, tasks); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := WBG(paperParams, HomogeneousCores(2, table2()), nil); err == nil {
		t.Error("empty tasks accepted")
	}
	if _, err := Homogeneous(paperParams, table2(), 0, tasks); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestPlanCostMatchesEnergyTime(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tasks := randomTasks(rng, 12)
	plan, err := WBG(paperParams, HomogeneousCores(3, table2()), tasks)
	if err != nil {
		t.Fatal(err)
	}
	eCost, tCost, total := plan.Cost()
	joules, _, turnaround := plan.EnergyTime()
	if math.Abs(eCost-paperParams.Re*joules) > 1e-9 {
		t.Errorf("energy cost %v != Re*joules %v", eCost, paperParams.Re*joules)
	}
	if math.Abs(tCost-paperParams.Rt*turnaround) > 1e-9 {
		t.Errorf("time cost %v != Rt*turnaround %v", tCost, paperParams.Rt*turnaround)
	}
	if math.Abs(total-(eCost+tCost)) > 1e-12 {
		t.Errorf("total mismatch")
	}
}

func TestPlanValidateCatchesDuplicates(t *testing.T) {
	l := model.RateLevel{Rate: 1, Energy: 1, Time: 1}
	p := &Plan{Params: paperParams, Cores: []CorePlan{{
		Core: 0,
		Sequence: []model.Assignment{
			{Task: model.Task{ID: 1, Cycles: 1}, Level: l},
			{Task: model.Task{ID: 1, Cycles: 1}, Level: l},
		},
	}}}
	if err := p.Validate(); err == nil {
		t.Error("duplicate task not caught")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tasks := randomTasks(rng, 30)
	p1, _ := WBG(paperParams, HomogeneousCores(4, table2()), tasks)
	p2, _ := WBG(paperParams, HomogeneousCores(4, table2()), tasks)
	for j := range p1.Cores {
		if len(p1.Cores[j].Sequence) != len(p2.Cores[j].Sequence) {
			t.Fatal("nondeterministic core sizes")
		}
		for i := range p1.Cores[j].Sequence {
			if p1.Cores[j].Sequence[i].Task.ID != p2.Cores[j].Sequence[i].Task.ID {
				t.Fatal("nondeterministic assignment")
			}
		}
	}
}

// Property: swapping any two adjacent tasks in the WBG single-core
// order never decreases the cost (local optimality of Theorem 3).
func TestSingleCoreLocalOptimality(t *testing.T) {
	rt := table2()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tasks := randomTasks(rng, 2+rng.Intn(10))
		plan, err := SingleCore(paperParams, rt, tasks)
		if err != nil {
			return false
		}
		seq := plan.Cores[0].Sequence
		_, _, best := paperParams.SequenceCost(seq, 0)
		n := len(seq)
		for i := 0; i+1 < n; i++ {
			alt := make([]model.Assignment, n)
			copy(alt, seq)
			// Swap the tasks but keep the positions' rates
			// (rates are a function of position).
			alt[i].Task, alt[i+1].Task = alt[i+1].Task, alt[i].Task
			_, _, c := paperParams.SequenceCost(alt, 0)
			if c < best-1e-9 {
				t.Logf("seed %d: swap %d improved %v -> %v", seed, i, best, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
