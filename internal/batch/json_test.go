package batch_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

var jsonParams = model.CostParams{Re: 0.1, Rt: 0.4}

func jsonTasks(rng *rand.Rand, n int) model.TaskSet {
	ts := make(model.TaskSet, n)
	for i := range ts {
		ts[i] = model.Task{ID: i, Cycles: 0.1 + rng.Float64()*100, Deadline: model.NoDeadline}
	}
	return ts
}

func TestPlanJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tasks := jsonTasks(rng, 9)
	plan, err := batch.WBG(jsonParams, batch.HomogeneousCores(3, platform.TableII()), tasks)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := batch.ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, _, want := plan.Cost()
	_, _, got := back.Cost()
	if math.Abs(want-got) > 1e-9*want {
		t.Errorf("cost changed: %v vs %v", got, want)
	}
	if back.NumTasks() != plan.NumTasks() {
		t.Error("task count changed")
	}
	if len(back.Tasks()) != 9 {
		t.Errorf("Tasks() = %d", len(back.Tasks()))
	}
}

func TestPlanJSONExecutable(t *testing.T) {
	// A deserialized plan must execute in the simulator using its own
	// reconstructed task set.
	rng := rand.New(rand.NewSource(2))
	tasks := jsonTasks(rng, 6)
	plan, err := batch.WBG(jsonParams, batch.HomogeneousCores(2, platform.TableII()), tasks)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := batch.ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := sim.NewFixedPlan(back)
	if err != nil {
		t.Fatal(err)
	}
	_, _, want := back.Cost()
	res, err := sim.Run(sim.Config{
		Platform: platform.Homogeneous(2, platform.TableII(), platform.Ideal{}),
		Policy:   fp,
	}, back.Tasks(), jsonParams)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalCost-want) > 1e-6*want {
		t.Errorf("executed %v != planned %v", res.TotalCost, want)
	}
}

func TestReadPlanJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"re":0,"rt":1,"cores":[]}`,
		`{"re":1,"rt":1,"cores":[[{"task":1,"cycles":-5,"rate":1,"energy":1,"time":1}]]}`,
		`{"re":1,"rt":1,"cores":[[{"task":1,"cycles":5,"rate":1,"energy":1,"time":1},{"task":1,"cycles":5,"rate":1,"energy":1,"time":1}]]}`,
		`{"re":1,"rt":1,"unknown":true,"cores":[]}`,
	}
	for i, doc := range cases {
		if _, err := batch.ReadPlanJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d accepted: %s", i, doc)
		}
	}
}
