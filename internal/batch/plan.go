// Package batch implements the paper's batch-mode scheduling
// algorithms (Section III): the optimal single-core ordering of
// Algorithm 2 ("Longest Task Last"), the round-robin assignment for
// homogeneous multi-cores (Theorem 4), and the Workload Based Greedy
// algorithm for heterogeneous multi-cores (Algorithm 3, Theorem 5).
//
// A batch plan fixes, for every core, the execution order of its tasks
// and the processing rate of each task; rates do not change while a
// task runs (the batch-mode DVFS assumption).
package batch

import (
	"fmt"

	"dvfsched/internal/model"
)

// CorePlan is the schedule of one core: tasks in execution order with
// their chosen rate levels.
type CorePlan struct {
	// Core is the core index the plan targets.
	Core int
	// Sequence lists assignments in execution order (index 0 runs
	// first).
	Sequence []model.Assignment
}

// Cost evaluates the analytic cost model (Eq. 8) for this core.
func (cp CorePlan) Cost(params model.CostParams) (energyCost, timeCost, total float64) {
	return params.SequenceCost(cp.Sequence, 0)
}

// Plan is a complete batch schedule across all cores.
type Plan struct {
	// Params are the cost constants the plan was optimized for.
	Params model.CostParams
	// Cores holds one CorePlan per core, indexed by core.
	Cores []CorePlan
}

// Cost returns the total analytic energy cost, temporal cost, and
// their sum across all cores, in cents.
func (p *Plan) Cost() (energyCost, timeCost, total float64) {
	for _, c := range p.Cores {
		e, t, _ := c.Cost(p.Params)
		energyCost += e
		timeCost += t
	}
	return energyCost, timeCost, energyCost + timeCost
}

// EnergyTime returns the physical totals: energy in joules, makespan in
// seconds (max over cores), and the sum of turnaround times in seconds.
func (p *Plan) EnergyTime() (joules, makespan, turnaroundSum float64) {
	for _, c := range p.Cores {
		j, mk, ta := model.SequenceEnergyTime(c.Sequence)
		joules += j
		turnaroundSum += ta
		if mk > makespan {
			makespan = mk
		}
	}
	return joules, makespan, turnaroundSum
}

// NumTasks returns the number of tasks scheduled by the plan.
func (p *Plan) NumTasks() int {
	n := 0
	for _, c := range p.Cores {
		n += len(c.Sequence)
	}
	return n
}

// Validate checks structural sanity: every task appears exactly once
// and every assignment uses a positive rate.
func (p *Plan) Validate() error {
	seen := make(map[int]bool)
	for ci, c := range p.Cores {
		if c.Core != ci {
			return fmt.Errorf("batch: core plan %d labeled %d", ci, c.Core)
		}
		for _, a := range c.Sequence {
			if seen[a.Task.ID] {
				return fmt.Errorf("batch: task %d scheduled twice", a.Task.ID)
			}
			seen[a.Task.ID] = true
			if a.Level.Rate <= 0 || a.Level.Time <= 0 || a.Level.Energy <= 0 {
				return fmt.Errorf("batch: task %d has invalid rate level %+v", a.Task.ID, a.Level)
			}
		}
	}
	return nil
}
