package batch

import (
	"encoding/json"
	"fmt"
	"io"

	"dvfsched/internal/model"
)

// assignmentJSON is the wire form of one scheduled task.
type assignmentJSON struct {
	TaskID int     `json:"task"`
	Name   string  `json:"name,omitempty"`
	Cycles float64 `json:"cycles"`
	Rate   float64 `json:"rate"`
	Energy float64 `json:"energy"`
	Time   float64 `json:"time"`
}

// planJSON is the self-contained wire form of a plan: enough to
// re-execute it without the original trace.
type planJSON struct {
	Re    float64            `json:"re"`
	Rt    float64            `json:"rt"`
	Cores [][]assignmentJSON `json:"cores"`
}

// WriteJSON serializes the plan, self-contained, as indented JSON.
func (p *Plan) WriteJSON(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	doc := planJSON{Re: p.Params.Re, Rt: p.Params.Rt, Cores: make([][]assignmentJSON, len(p.Cores))}
	for i, cp := range p.Cores {
		doc.Cores[i] = make([]assignmentJSON, len(cp.Sequence))
		for j, a := range cp.Sequence {
			doc.Cores[i][j] = assignmentJSON{
				TaskID: a.Task.ID,
				Name:   a.Task.Name,
				Cycles: a.Task.Cycles,
				Rate:   a.Level.Rate,
				Energy: a.Level.Energy,
				Time:   a.Level.Time,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadPlanJSON parses a plan written by WriteJSON and validates it.
func ReadPlanJSON(r io.Reader) (*Plan, error) {
	var doc planJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("batch: decoding plan: %w", err)
	}
	params := model.CostParams{Re: doc.Re, Rt: doc.Rt}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Params: params, Cores: make([]CorePlan, len(doc.Cores))}
	for i, seq := range doc.Cores {
		cp := CorePlan{Core: i, Sequence: make([]model.Assignment, len(seq))}
		for j, a := range seq {
			task := model.Task{ID: a.TaskID, Name: a.Name, Cycles: a.Cycles, Deadline: model.NoDeadline}
			if err := task.Validate(); err != nil {
				return nil, err
			}
			cp.Sequence[j] = model.Assignment{
				Task:  task,
				Level: model.RateLevel{Rate: a.Rate, Energy: a.Energy, Time: a.Time},
			}
		}
		plan.Cores[i] = cp
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// Tasks reconstructs the task set the plan schedules.
func (p *Plan) Tasks() model.TaskSet {
	var out model.TaskSet
	for _, cp := range p.Cores {
		for _, a := range cp.Sequence {
			out = append(out, a.Task)
		}
	}
	return out
}
