package batch

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"

	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
)

// ErrNoCores is returned when planning is attempted with an empty core
// set. Matchable via errors.Is.
var ErrNoCores = errors.New("batch: no cores")

// CoreSpec describes one core available to the scheduler. Cores may
// differ in their rate tables (heterogeneous systems) but share the
// cost constants.
type CoreSpec struct {
	// Rates is the core's discrete rate set with its E and T
	// functions.
	Rates *model.RateTable
}

// HomogeneousCores returns r identical CoreSpecs sharing one table.
func HomogeneousCores(r int, rates *model.RateTable) []CoreSpec {
	cores := make([]CoreSpec, r)
	for i := range cores {
		cores[i] = CoreSpec{Rates: rates}
	}
	return cores
}

// slot is a candidate (core, backward position) pair in the greedy
// heap, ordered by the per-cycle cost C_j(k).
type slot struct {
	cost float64
	core int
	k    int // backward position on that core
}

type slotHeap []slot

func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	//dvfslint:allow floatcmp heap ordering needs a strict weak order; epsilon equality is intransitive
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	if h[i].core != h[j].core {
		return h[i].core < h[j].core // deterministic tie-break
	}
	return h[i].k < h[j].k
}
func (h slotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x interface{}) { *h = append(*h, x.(slot)) }
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// WBG implements Algorithm 3, Workload Based Greedy: the optimal batch
// schedule for tasks without deadlines on R possibly-heterogeneous
// cores (Theorem 5). Tasks are considered in non-increasing cycle
// order; each is assigned to the (core, backward position) slot with
// the least per-cycle cost C_j(k), taken from a min-heap seeded with
// C_j(1) for every core. It runs in O(|J| (log |J| + log R) + R|P|).
func WBG(params model.CostParams, cores []CoreSpec, tasks model.TaskSet) (*Plan, error) {
	return WBGContext(context.Background(), params, cores, tasks, Opts{})
}

// Opts tunes WBGContext without changing its results.
type Opts struct {
	// Cache, if non-nil, resolves per-core envelopes through the
	// memoized cache instead of recomputing them.
	Cache *envelope.Cache
	// Workers, when >= 2 and the core set has at least
	// MinParallelCores cores, resolves per-core envelopes with that
	// many concurrent workers.
	Workers int
}

// MinParallelCores is the smallest core count for which parallel
// per-core evaluation is worth the handoff overhead; below it the
// sequential path is used regardless of configured workers.
const MinParallelCores = 4

// ctxCheckInterval is how many greedy placements WBGContext performs
// between context polls.
const ctxCheckInterval = 1024

// WBGContext is WBG with cancellation and optional envelope caching
// and parallel per-core envelope resolution. The schedule is identical
// to WBG's for identical inputs: the cache returns the same envelopes
// Compute would, and parallelism only covers the per-core resolution,
// never the (order-sensitive) greedy loop.
func WBGContext(ctx context.Context, params model.CostParams, cores []CoreSpec, tasks model.TaskSet, opts Opts) (*Plan, error) {
	if len(cores) == 0 {
		return nil, ErrNoCores
	}
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	envs, err := resolveEnvelopes(params, cores, opts)
	if err != nil {
		return nil, err
	}

	sorted := tasks.Clone()
	sorted.SortByCyclesDesc()

	h := make(slotHeap, 0, len(cores))
	for j := range cores {
		h = append(h, slot{cost: envs[j].Cost(1), core: j, k: 1})
	}
	heap.Init(&h)

	// backward[j] collects core j's tasks in backward-position order
	// (index 0 is backward position 1, i.e. the task that runs last).
	backward := make([][]model.Assignment, len(cores))
	for n, task := range sorted {
		if n%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("batch: plan canceled: %w", err)
			}
		}
		s := heap.Pop(&h).(slot)
		level := envs[s.core].LevelFor(s.k)
		backward[s.core] = append(backward[s.core], model.Assignment{Task: task, Level: level})
		heap.Push(&h, slot{cost: envs[s.core].Cost(s.k + 1), core: s.core, k: s.k + 1})
	}

	plan := &Plan{Params: params, Cores: make([]CorePlan, len(cores))}
	for j, bw := range backward {
		seq := make([]model.Assignment, len(bw))
		for i, a := range bw {
			seq[len(bw)-1-i] = a // reverse: backward pos 1 runs last
		}
		plan.Cores[j] = CorePlan{Core: j, Sequence: seq}
	}
	return plan, nil
}

// resolveEnvelopes materializes each core's dominating-range envelope,
// through the cache when one is configured and across workers when the
// core set is wide enough to amortize the goroutine handoffs.
func resolveEnvelopes(params model.CostParams, cores []CoreSpec, opts Opts) ([]*envelope.Envelope, error) {
	envs := make([]*envelope.Envelope, len(cores))
	one := func(i int) error {
		var env *envelope.Envelope
		var err error
		if opts.Cache != nil {
			env, err = opts.Cache.Get(params, cores[i].Rates)
		} else {
			env, err = envelope.Compute(params, cores[i].Rates)
		}
		if err != nil {
			return fmt.Errorf("batch: core %d: %w", i, err)
		}
		envs[i] = env
		return nil
	}
	workers := opts.Workers
	if workers > len(cores) {
		workers = len(cores)
	}
	if workers < 2 || len(cores) < MinParallelCores {
		for i := range cores {
			if err := one(i); err != nil {
				return nil, err
			}
		}
		return envs, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cores); i += workers {
				if err := one(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return envs, nil
}

// Homogeneous implements the round-robin technique of Theorem 4 for R
// identical cores: the i-th longest task (0-indexed) is placed at
// backward position i/R + 1 of core i mod R. For identical cores this
// coincides with WBG but runs without a heap.
func Homogeneous(params model.CostParams, rates *model.RateTable, r int, tasks model.TaskSet) (*Plan, error) {
	if r <= 0 {
		return nil, fmt.Errorf("batch: need at least one core, got %d", r)
	}
	env, err := envelope.Compute(params, rates)
	if err != nil {
		return nil, err
	}
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	sorted := tasks.Clone()
	sorted.SortByCyclesDesc()

	backward := make([][]model.Assignment, r)
	ri := 0
	for i, task := range sorted {
		k := i/r + 1
		for !env.Range(ri).Contains(k) {
			ri++
		}
		j := i % r
		backward[j] = append(backward[j], model.Assignment{Task: task, Level: env.Range(ri).Level})
	}
	plan := &Plan{Params: params, Cores: make([]CorePlan, r)}
	for j, bw := range backward {
		seq := make([]model.Assignment, len(bw))
		for i, a := range bw {
			seq[len(bw)-1-i] = a
		}
		plan.Cores[j] = CorePlan{Core: j, Sequence: seq}
	}
	return plan, nil
}
