package batch

import (
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
)

// SingleCore implements Algorithm 2 ("Longest Task Last"): the optimal
// schedule of a batch of independent tasks without deadlines on one
// core. It runs in O(|J| log |J| + |P|).
//
// By Theorem 3 the optimal execution order is non-decreasing in cycle
// count (shortest first), and by Lemma 1 the optimal rate for a task
// depends only on its position: the task at backward position k (k = 1
// runs last) uses the rate whose dominating position range contains k.
// Front tasks therefore run short-and-fast, tail tasks long-and-slow.
func SingleCore(params model.CostParams, rates *model.RateTable, tasks model.TaskSet) (*Plan, error) {
	env, err := envelope.Compute(params, rates)
	if err != nil {
		return nil, err
	}
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	seq := sequenceForCore(env, tasks)
	plan := &Plan{Params: params, Cores: []CorePlan{{Core: 0, Sequence: seq}}}
	return plan, nil
}

// sequenceForCore orders tasks shortest-first and assigns each its
// dominating rate by backward position, walking the envelope ranges in
// one pass (the loop structure of Algorithm 2).
func sequenceForCore(env *envelope.Envelope, tasks model.TaskSet) []model.Assignment {
	sorted := tasks.Clone()
	// L^B_k non-increasing in k: backward position 1 (runs last) is
	// the longest task.
	sorted.SortByCyclesDesc()
	n := len(sorted)
	seq := make([]model.Assignment, n)
	ri := 0
	for k := 1; k <= n; k++ { // k is the backward position
		for !env.Range(ri).Contains(k) {
			ri++
		}
		// Backward position k is forward position n-k+1.
		seq[n-k] = model.Assignment{Task: sorted[k-1], Level: env.Range(ri).Level}
	}
	return seq
}
