package sched

import (
	"math"
	"testing"

	"dvfsched/internal/governor"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

var paperParams = model.CostParams{Re: 0.1, Rt: 0.4}

func plat(n int) *platform.Platform {
	return platform.Homogeneous(n, platform.TableII(), platform.Ideal{})
}

func batchTasks(n int) model.TaskSet {
	ts := make(model.TaskSet, n)
	for i := range ts {
		ts[i] = model.Task{ID: i, Cycles: 5 + float64((i*13)%40), Deadline: model.NoDeadline}
	}
	return ts
}

func TestOLBMaxFrequencyCompletesAll(t *testing.T) {
	res, err := sim.Run(sim.Config{Platform: plat(4), Policy: &OLB{MaxFrequency: true}}, batchTasks(20), paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 20 {
		t.Fatalf("tasks = %d", len(res.Tasks))
	}
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Errorf("task %d not done", ts.Task.ID)
		}
	}
	// All work ran at the top rate: energy = sum cycles * E(max).
	var cycles float64
	for _, ts := range res.Tasks {
		cycles += ts.Task.Cycles
	}
	want := cycles * 7.1
	if math.Abs(res.ActiveEnergy-want) > 1e-6*want {
		t.Errorf("energy %v, want %v", res.ActiveEnergy, want)
	}
}

func TestOLBGovernorRampsUp(t *testing.T) {
	// With the on-demand governor and a 1 s tick, a saturated core
	// reaches max frequency after the first tick, so makespan is
	// between the all-max and all-min extremes.
	res, err := sim.Run(sim.Config{
		Platform:     plat(1),
		Policy:       &OLB{Governor: governor.DefaultOnDemand()},
		TickInterval: 1,
	}, batchTasks(4), paperParams)
	if err != nil {
		t.Fatal(err)
	}
	var cycles float64
	for _, ts := range res.Tasks {
		cycles += ts.Task.Cycles
	}
	atMax := cycles * 0.33
	atMin := cycles * 0.625
	if res.Makespan <= atMax || res.Makespan >= atMin {
		t.Errorf("makespan %v outside (%v, %v)", res.Makespan, atMax, atMin)
	}
	if res.Switches == 0 {
		t.Error("governor never switched frequency")
	}
}

func TestOLBInteractivePreempts(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 1000, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 1, Arrival: 10, Interactive: true, Deadline: model.NoDeadline},
	}
	res, err := sim.Run(sim.Config{Platform: plat(1), Policy: &OLB{MaxFrequency: true, Preemptive: true}}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	inter := res.Tasks[1]
	if math.Abs(inter.Completion-(10+0.33)) > 1e-9 {
		t.Errorf("interactive completion %v, want 10.33", inter.Completion)
	}
	if res.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", res.Preemptions)
	}
	if !res.Tasks[0].Done {
		t.Error("preempted task never resumed")
	}
}

func TestOLBInteractiveWaitsWhenAllInteractive(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Interactive: true, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 10, Arrival: 0.1, Interactive: true, Deadline: model.NoDeadline},
	}
	res, err := sim.Run(sim.Config{Platform: plat(1), Policy: &OLB{MaxFrequency: true}}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	// Second interactive cannot preempt the first; it runs after.
	if res.Tasks[1].Completion <= res.Tasks[0].Completion {
		t.Error("same-priority preemption happened")
	}
	if res.Preemptions != 0 {
		t.Errorf("preemptions = %d", res.Preemptions)
	}
}

func TestPowerSavePlatformRestrictsTable(t *testing.T) {
	ps, err := PowerSavePlatform(plat(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range ps.Cores {
		if rt.Len() != 3 {
			t.Errorf("core %d: %d levels, want 3", i, rt.Len())
		}
		if rt.Max().Rate != 2.4 {
			t.Errorf("core %d: max %v, want 2.4", i, rt.Max().Rate)
		}
	}
	// Original untouched.
	if plat(4).Cores[0].Len() != 5 {
		t.Error("source platform mutated")
	}
	// And it runs.
	res, err := sim.Run(sim.Config{
		Platform:     ps,
		Policy:       &OLB{Governor: governor.DefaultOnDemand()},
		TickInterval: 1,
	}, batchTasks(8), paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("no progress")
	}
}

func TestOnDemandRRRoundRobins(t *testing.T) {
	res, err := sim.Run(sim.Config{
		Platform:     plat(2),
		Policy:       &OnDemandRR{},
		TickInterval: 1,
	}, batchTasks(10), paperParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Errorf("task %d not done", ts.Task.ID)
		}
	}
}

func TestOnDemandRRInteractivePreemptsOwnCore(t *testing.T) {
	// Task 0 -> core 0, task 1 (interactive, arrives later) -> core 1,
	// task 2 -> core 0... With one core the interactive must preempt.
	tasks := model.TaskSet{
		{ID: 1, Cycles: 1000, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 1, Arrival: 5, Interactive: true, Deadline: model.NoDeadline},
	}
	res, err := sim.Run(sim.Config{Platform: plat(1), Policy: &OnDemandRR{Preemptive: true}, TickInterval: 1}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", res.Preemptions)
	}
	inter := res.Tasks[1]
	if inter.Completion > 6 {
		t.Errorf("interactive served too late: %v", inter.Completion)
	}
}

func TestPolicyNames(t *testing.T) {
	if (&OLB{}).Name() != "olb" {
		t.Error("OLB name")
	}
	if (&OLB{Governor: governor.DefaultOnDemand()}).Name() != "olb+ondemand" {
		t.Error("OLB+gov name")
	}
	if (&OnDemandRR{}).Name() != "ondemand-rr" {
		t.Error("OnDemandRR name")
	}
}

func TestOLBShortestFirstOrdering(t *testing.T) {
	// Single core busy with the first arrival; later arrivals queue
	// and must drain shortest-first.
	tasks := model.TaskSet{
		{ID: 0, Cycles: 50, Deadline: model.NoDeadline},
		{ID: 1, Cycles: 40, Arrival: 0.1, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 10, Arrival: 0.2, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 20, Arrival: 0.3, Deadline: model.NoDeadline},
	}
	res, err := sim.Run(sim.Config{Platform: plat(1), Policy: &OLB{MaxFrequency: true, ShortestFirst: true}}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	c := func(id int) float64 { return res.Tasks[id].Completion }
	if !(c(2) < c(3) && c(3) < c(1)) {
		t.Errorf("SJF order wrong: %v %v %v", c(1), c(2), c(3))
	}
	if (&OLB{ShortestFirst: true}).Name() != "olb-sjf" {
		t.Error("name")
	}
}
