package sched

import (
	"dvfsched/internal/governor"
	"dvfsched/internal/sim"
)

// OnDemandRR is the paper's online-mode "On-demand" baseline: arriving
// tasks are assigned to cores round-robin (the governor itself does not
// place tasks), each core runs its queue FIFO within priority class,
// and the Linux on-demand governor drives each core's frequency from
// its load. Interactive tasks are queued ahead of non-interactive ones
// on their assigned core; with Preemptive set they additionally
// preempt a running non-interactive task.
type OnDemandRR struct {
	// Governor drives frequencies; defaults to the paper's 85%
	// on-demand governor.
	Governor governor.Governor
	// Preemptive lets interactive arrivals preempt non-interactive
	// work on their assigned core.
	Preemptive bool

	next   int
	queues []coreQueue
}

type coreQueue struct {
	interactive []*sim.TaskState
	batch       []*sim.TaskState
	paused      []*sim.TaskState
}

func (q *coreQueue) next() *sim.TaskState {
	if len(q.interactive) > 0 {
		t := q.interactive[0]
		q.interactive = q.interactive[1:]
		return t
	}
	if len(q.paused) > 0 {
		t := q.paused[len(q.paused)-1]
		q.paused = q.paused[:len(q.paused)-1]
		return t
	}
	if len(q.batch) > 0 {
		t := q.batch[0]
		q.batch = q.batch[1:]
		return t
	}
	return nil
}

// Name implements sim.Policy.
func (o *OnDemandRR) Name() string { return "ondemand-rr" }

// Init implements sim.Policy.
func (o *OnDemandRR) Init(e *sim.Engine) {
	if o.Governor == nil {
		o.Governor = governor.DefaultOnDemand()
	}
	o.queues = make([]coreQueue, e.NumCores())
}

// OnArrival implements sim.Policy.
func (o *OnDemandRR) OnArrival(e *sim.Engine, t *sim.TaskState) {
	core := o.next
	o.next = (o.next + 1) % e.NumCores()
	q := &o.queues[core]
	if t.Task.Interactive {
		q.interactive = append(q.interactive, t)
		if o.Preemptive && !e.Idle(core) {
			if r := e.Running(core); r != nil && !r.Task.Interactive {
				prev, err := e.Preempt(core)
				if err != nil {
					panic(err)
				}
				q.paused = append(q.paused, prev)
			}
		}
	} else {
		q.batch = append(q.batch, t)
	}
	o.dispatch(e, core)
}

// OnCompletion implements sim.Policy.
func (o *OnDemandRR) OnCompletion(e *sim.Engine, coreID int, _ *sim.TaskState) {
	o.dispatch(e, coreID)
}

// OnTick implements sim.Policy.
func (o *OnDemandRR) OnTick(e *sim.Engine) {
	for i := 0; i < e.NumCores(); i++ {
		rt := e.RateTable(i)
		cur := rt.IndexOf(e.CurrentLevel(i).Rate)
		next := o.Governor.Next(rt, cur, e.BusyFraction(i))
		if next != cur {
			if err := e.SetLevel(i, rt.Level(next)); err != nil {
				panic(err)
			}
		}
	}
}

func (o *OnDemandRR) dispatch(e *sim.Engine, core int) {
	if !e.Idle(core) {
		return
	}
	t := o.queues[core].next()
	if t == nil {
		return
	}
	if err := e.Start(core, t, e.CurrentLevel(core)); err != nil {
		panic(err)
	}
}
