// Package sched implements the baseline scheduling policies the paper
// compares against: Opportunistic Load Balancing (OLB), the Power
// Saving mode, and Linux On-demand with round-robin placement. All are
// sim.Policy implementations.
package sched

import (
	"sort"

	"dvfsched/internal/governor"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// OLB is Opportunistic Load Balancing: every task goes to the core
// with the earliest ready-to-execute time (any idle core, else a FIFO
// queue drained on completions), aiming to keep cores fully utilized
// and finish as early as possible.
//
// In the paper's batch experiments OLB's frequencies are driven by the
// Linux on-demand governor (set Governor and a sim tick interval); in
// the online experiments OLB pins every core at the highest frequency
// (leave Governor nil and set MaxFrequency).
//
// Interactive tasks have priority: they are placed before queued
// non-interactive tasks ("tasks on a core with the same priority will
// be executed in a FIFO fashion", Section V-B). The paper's baselines
// do not preempt; set Preemptive to let an interactive arrival preempt
// a running non-interactive task (assumption 4 of Section IV allows
// it).
type OLB struct {
	// MaxFrequency pins all work at each core's top rate.
	MaxFrequency bool
	// Governor, if non-nil, adjusts core frequencies on every tick.
	Governor governor.Governor
	// Preemptive lets interactive arrivals preempt non-interactive
	// work when no core is idle.
	Preemptive bool
	// ShortestFirst keeps the non-interactive queue in non-decreasing
	// cycle order instead of FIFO. It isolates, as an ablation, how
	// much of LMC's advantage is SJF ordering rather than DVFS.
	ShortestFirst bool

	interactive []*sim.TaskState // FIFO of waiting interactive tasks
	batch       []*sim.TaskState // FIFO of waiting non-interactive tasks
	paused      []*sim.TaskState // preempted tasks, resumed LIFO
}

// Name implements sim.Policy.
func (o *OLB) Name() string {
	name := "olb"
	if o.ShortestFirst {
		name = "olb-sjf"
	}
	if o.Governor != nil {
		return name + "+" + o.Governor.Name()
	}
	return name
}

// Init implements sim.Policy.
func (o *OLB) Init(e *sim.Engine) {
	if o.MaxFrequency {
		for i := 0; i < e.NumCores(); i++ {
			if err := e.SetLevel(i, e.RateTable(i).Max()); err != nil {
				panic(err)
			}
		}
	}
}

// levelFor returns the dispatch level for a core: top rate when
// MaxFrequency, otherwise the core's current governor-chosen setting.
func (o *OLB) levelFor(e *sim.Engine, core int) model.RateLevel {
	if o.MaxFrequency {
		return e.RateTable(core).Max()
	}
	return e.CurrentLevel(core)
}

// OnArrival implements sim.Policy.
func (o *OLB) OnArrival(e *sim.Engine, t *sim.TaskState) {
	if t.Task.Interactive {
		o.interactive = append(o.interactive, t)
		if !o.drain(e) && o.Preemptive {
			// No idle core: preempt a non-interactive task.
			for i := 0; i < e.NumCores(); i++ {
				r := e.Running(i)
				if r != nil && !r.Task.Interactive {
					prev, err := e.Preempt(i)
					if err != nil {
						panic(err)
					}
					o.paused = append(o.paused, prev)
					o.drain(e)
					break
				}
			}
		}
		return
	}
	if o.ShortestFirst {
		pos := sort.Search(len(o.batch), func(i int) bool {
			return o.batch[i].Task.Cycles > t.Task.Cycles
		})
		o.batch = append(o.batch, nil)
		copy(o.batch[pos+1:], o.batch[pos:])
		o.batch[pos] = t
	} else {
		o.batch = append(o.batch, t)
	}
	o.drain(e)
}

// OnCompletion implements sim.Policy.
func (o *OLB) OnCompletion(e *sim.Engine, _ int, _ *sim.TaskState) { o.drain(e) }

// OnTick implements sim.Policy.
func (o *OLB) OnTick(e *sim.Engine) {
	if o.Governor == nil {
		return
	}
	for i := 0; i < e.NumCores(); i++ {
		rt := e.RateTable(i)
		cur := rt.IndexOf(e.CurrentLevel(i).Rate)
		next := o.Governor.Next(rt, cur, e.BusyFraction(i))
		if next != cur {
			if err := e.SetLevel(i, rt.Level(next)); err != nil {
				panic(err)
			}
		}
	}
}

// next pops the highest-priority waiting task: interactive first, then
// preempted tasks (resumed before fresh ones), then the FIFO batch.
func (o *OLB) next() *sim.TaskState {
	if len(o.interactive) > 0 {
		t := o.interactive[0]
		o.interactive = o.interactive[1:]
		return t
	}
	if len(o.paused) > 0 {
		t := o.paused[len(o.paused)-1]
		o.paused = o.paused[:len(o.paused)-1]
		return t
	}
	if len(o.batch) > 0 {
		t := o.batch[0]
		o.batch = o.batch[1:]
		return t
	}
	return nil
}

// drain starts waiting tasks on idle cores; it reports whether all
// interactive tasks found a core.
func (o *OLB) drain(e *sim.Engine) bool {
	for i := 0; i < e.NumCores(); i++ {
		if !e.Idle(i) {
			continue
		}
		t := o.next()
		if t == nil {
			break
		}
		if err := e.Start(i, t, o.levelFor(e, i)); err != nil {
			panic(err)
		}
	}
	return len(o.interactive) == 0
}

// PowerSavePlatform derives the paper's Power Saving configuration
// from a platform: every core's frequency choices are restricted to
// the lower half of its range (for Table II: 1.6, 2.0 and 2.4 GHz).
func PowerSavePlatform(p *platform.Platform) (*platform.Platform, error) {
	cores := make([]*model.RateTable, len(p.Cores))
	for i, rt := range p.Cores {
		half := (rt.Len() + 1) / 2
		restricted, err := rt.Restrict(func(l model.RateLevel) bool {
			return rt.IndexOf(l.Rate) < half
		})
		if err != nil {
			return nil, err
		}
		cores[i] = restricted
	}
	return &platform.Platform{
		Cores:         cores,
		Exec:          p.Exec,
		SwitchLatency: p.SwitchLatency,
		IdleWatts:     p.IdleWatts,
	}, nil
}
