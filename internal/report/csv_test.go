package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "a,b\n") {
		t.Errorf("header wrong:\n%s", s)
	}
	if !strings.Contains(s, `"x,y"`) {
		t.Errorf("quoting wrong:\n%s", s)
	}
}

func TestCSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, nil, nil); err == nil {
		t.Error("empty header accepted")
	}
	if err := CSV(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestCSVFloats(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVFloats(&buf, []string{"x", "y"}, [][]float64{{1.5, 2}, {0.25, 1e-9}}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"1.5,2", "0.25,1e-09"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}
