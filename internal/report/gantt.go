package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dvfsched/internal/sim"
)

// ganttWidth is the character width of the rendered time axis.
const ganttWidth = 72

// Gantt renders a recorded simulation timeline as one text lane per
// core. Each column is a time slice; the character shown is the task
// ID's last decimal digit (multiple tasks in a slice render '*', idle
// renders '.'). A legend with the time span follows the lanes.
func Gantt(w io.Writer, timeline []sim.TimelineSegment) error {
	if len(timeline) == 0 {
		return fmt.Errorf("report: empty timeline (was sim.Config.RecordTimeline set?)")
	}
	maxCore := 0
	start, end := timeline[0].Start, timeline[0].End
	for _, s := range timeline {
		if s.Core > maxCore {
			maxCore = s.Core
		}
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	if end <= start {
		return fmt.Errorf("report: degenerate timeline span [%v, %v]", start, end)
	}
	span := end - start
	lanes := make([][]rune, maxCore+1)
	owner := make([][]int, maxCore+1)
	for i := range lanes {
		lanes[i] = []rune(strings.Repeat(".", ganttWidth))
		owner[i] = make([]int, ganttWidth)
		for j := range owner[i] {
			owner[i][j] = -1
		}
	}
	segs := make([]sim.TimelineSegment, len(timeline))
	copy(segs, timeline)
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	for _, s := range segs {
		lo := int((s.Start - start) / span * ganttWidth)
		hi := int((s.End - start) / span * ganttWidth)
		if hi == lo {
			hi = lo + 1
		}
		if hi > ganttWidth {
			hi = ganttWidth
		}
		for c := lo; c < hi; c++ {
			switch owner[s.Core][c] {
			case -1, s.TaskID:
				owner[s.Core][c] = s.TaskID
				lanes[s.Core][c] = rune('0' + s.TaskID%10)
			default:
				lanes[s.Core][c] = '*'
			}
		}
	}
	for i, lane := range lanes {
		fmt.Fprintf(w, "core %2d |%s|\n", i, string(lane))
	}
	fmt.Fprintf(w, "        %-*s%.1fs\n", ganttWidth-4, fmt.Sprintf("%.1fs", start), end)
	return nil
}
