package report

import (
	"reflect"
	"strings"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// runTracedLMC executes an online LMC scenario with preemption and
// switch stalls, capturing both the engine's own timeline and the
// event stream so the two recordings can be compared.
func runTracedLMC(t *testing.T) (*sim.Result, []obs.Event) {
	t.Helper()
	params := model.CostParams{Re: 0.4, Rt: 0.1}
	lmc, err := online.NewLMC(params)
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.Homogeneous(2, platform.TableII(), platform.Ideal{})
	plat.SwitchLatency = 0.02
	tasks := model.TaskSet{
		{ID: 1, Cycles: 120, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 80, Arrival: 0.5, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 60, Arrival: 1, Deadline: model.NoDeadline},
		{ID: 4, Cycles: 5, Arrival: 20, Interactive: true, Deadline: model.NoDeadline},
		{ID: 5, Cycles: 90, Arrival: 25, Deadline: model.NoDeadline},
	}
	rec := &obs.Recorder{}
	res, err := sim.Run(sim.Config{
		Platform:       plat,
		Policy:         lmc,
		RecordTimeline: true,
		Sink:           rec,
	}, tasks, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 || res.Switches == 0 {
		t.Fatalf("scenario too tame: %d preemptions, %d switches", res.Preemptions, res.Switches)
	}
	return res, rec.Events()
}

func TestTraceReplayMatchesRecordedTimeline(t *testing.T) {
	res, events := runTracedLMC(t)

	replayed, err := TimelineFromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	direct := MergeTimeline(res.Timeline)
	if !reflect.DeepEqual(replayed, direct) {
		t.Fatalf("replayed timeline differs from recorded:\nreplayed: %+v\nrecorded: %+v", replayed, direct)
	}

	// The rendered artifacts must be byte-identical through both
	// paths: reports are a pure function of the trace.
	var gDirect, gTrace strings.Builder
	if err := Gantt(&gDirect, direct); err != nil {
		t.Fatal(err)
	}
	if err := TraceGantt(&gTrace, events); err != nil {
		t.Fatal(err)
	}
	if gDirect.String() != gTrace.String() {
		t.Errorf("gantt differs:\ndirect:\n%s\ntrace:\n%s", gDirect.String(), gTrace.String())
	}

	var cDirect, cTrace strings.Builder
	if err := TimelineCSV(&cDirect, direct); err != nil {
		t.Fatal(err)
	}
	if err := TraceCSV(&cTrace, events); err != nil {
		t.Fatal(err)
	}
	if cDirect.String() != cTrace.String() {
		t.Errorf("csv differs:\ndirect:\n%s\ntrace:\n%s", cDirect.String(), cTrace.String())
	}
}

func TestTraceReplaySurvivesJSONLRoundTrip(t *testing.T) {
	_, events := runTracedLMC(t)
	var buf strings.Builder
	jw := obs.NewJSONLWriter(&buf)
	for _, ev := range events {
		jw.Emit(ev)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	decoded, err := obs.ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := TimelineFromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TimelineFromEvents(decoded)
	if err != nil {
		t.Fatal(err)
	}
	// Go's JSON round-trips float64 exactly, so this holds bit-for-bit.
	if !reflect.DeepEqual(got, want) {
		t.Fatal("timeline changed across JSONL round trip")
	}
}

func TestMergeTimelineCoalesces(t *testing.T) {
	in := []sim.TimelineSegment{
		{Core: 1, TaskID: 7, Start: 2, End: 3, Rate: 1.5},
		{Core: 0, TaskID: 7, Start: 0, End: 1, Rate: 1.5},
		{Core: 0, TaskID: 7, Start: 1, End: 2, Rate: 1.5}, // joins previous
		{Core: 0, TaskID: 7, Start: 2, End: 3, Rate: 2.0}, // rate change splits
		{Core: 0, TaskID: 8, Start: 3, End: 4, Rate: 2.0}, // task change splits
		{Core: 0, TaskID: 8, Start: 5, End: 6, Rate: 2.0}, // gap splits
	}
	want := []sim.TimelineSegment{
		{Core: 0, TaskID: 7, Start: 0, End: 2, Rate: 1.5},
		{Core: 0, TaskID: 7, Start: 2, End: 3, Rate: 2.0},
		{Core: 0, TaskID: 8, Start: 3, End: 4, Rate: 2.0},
		{Core: 0, TaskID: 8, Start: 5, End: 6, Rate: 2.0},
		{Core: 1, TaskID: 7, Start: 2, End: 3, Rate: 1.5},
	}
	if got := MergeTimeline(in); !reflect.DeepEqual(got, want) {
		t.Errorf("MergeTimeline = %+v, want %+v", got, want)
	}
}

func TestTimelineFromEventsRejectsCorruptStreams(t *testing.T) {
	cases := []struct {
		name   string
		events []obs.Event
	}{
		{"start on busy core", []obs.Event{
			{Seq: 1, T: 0, Kind: obs.KindStart, Core: 0, Task: 1, Rate: 1},
			{Seq: 2, T: 1, Kind: obs.KindStart, Core: 0, Task: 2, Rate: 1},
		}},
		{"complete of absent task", []obs.Event{
			{Seq: 1, T: 1, Kind: obs.KindComplete, Core: 0, Task: 1},
		}},
		{"dvfs for wrong task", []obs.Event{
			{Seq: 1, T: 0, Kind: obs.KindStart, Core: 0, Task: 1, Rate: 1},
			{Seq: 2, T: 1, Kind: obs.KindDVFS, Core: 0, Task: 2, PrevRate: 1, Rate: 2},
		}},
		{"unterminated run", []obs.Event{
			{Seq: 1, T: 0, Kind: obs.KindStart, Core: 0, Task: 1, Rate: 1},
		}},
	}
	for _, tc := range cases {
		if _, err := TimelineFromEvents(tc.events); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
