package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting the file
// when the test runs with -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -update` to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGanttGolden(t *testing.T) {
	res := runRecordedSim(t)
	var buf strings.Builder
	if err := Gantt(&buf, res.Timeline); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "gantt_batch.txt", buf.String())
}

func TestTimelineCSVGolden(t *testing.T) {
	res := runRecordedSim(t)
	var buf strings.Builder
	if err := TimelineCSV(&buf, MergeTimeline(res.Timeline)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline_batch.csv", buf.String())
}

func TestTraceGoldens(t *testing.T) {
	// The trace-driven path: both artifacts rendered purely from the
	// event stream of the online LMC scenario.
	_, events := runTracedLMC(t)
	var gantt, csv strings.Builder
	if err := TraceGantt(&gantt, events); err != nil {
		t.Fatal(err)
	}
	if err := TraceCSV(&csv, events); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "gantt_trace.txt", gantt.String())
	checkGolden(t, "timeline_trace.csv", csv.String())
}

func TestBarsGolden(t *testing.T) {
	var buf strings.Builder
	err := Bars(&buf, "normalized cost", []Bar{
		{Label: "lmc", Value: 1.0},
		{Label: "ondemand", Value: 1.37},
		{Label: "performance", Value: 1.61},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bars.txt", buf.String())
}
