package report

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"dvfsched/internal/obs"
	"dvfsched/internal/sim"
)

// openRun tracks a core's in-flight execution while replaying a trace.
type openRun struct {
	task int
	rate float64
	at   float64 // effective execution start (after any switch stall)
}

// TimelineFromEvents reconstructs the per-core execution timeline from
// a simulator event stream, making reports a pure function of the
// trace. The result matches the engine's own recording after
// MergeTimeline normalization: start events open a run at their
// effective time (switch stalls excluded), DVFS changes split it, and
// preempt/complete events close it. Empty intervals are dropped, like
// the engine drops zero-length settles.
func TimelineFromEvents(events []obs.Event) ([]sim.TimelineSegment, error) {
	open := map[int]*openRun{}
	var segs []sim.TimelineSegment
	settle := func(core int, r *openRun, t float64) {
		if t > r.at {
			segs = append(segs, sim.TimelineSegment{
				Core: core, TaskID: r.task, Start: r.at, End: t, Rate: r.rate,
			})
		}
	}
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindStart:
			if open[ev.Core] != nil {
				return nil, fmt.Errorf("report: trace starts task %d on busy core %d at t=%v", ev.Task, ev.Core, ev.T)
			}
			open[ev.Core] = &openRun{task: ev.Task, rate: ev.Rate, at: ev.EffectiveAt()}
		case obs.KindDVFS:
			if ev.Task < 0 {
				// Idle-core switch, or the pre-start stall already
				// folded into the start event's effective time.
				continue
			}
			r := open[ev.Core]
			if r == nil || r.task != ev.Task {
				return nil, fmt.Errorf("report: trace switches core %d for task %d which is not running there at t=%v", ev.Core, ev.Task, ev.T)
			}
			settle(ev.Core, r, ev.T)
			r.rate = ev.Rate
			r.at = ev.EffectiveAt()
		case obs.KindPreempt, obs.KindComplete:
			r := open[ev.Core]
			if r == nil || r.task != ev.Task {
				return nil, fmt.Errorf("report: trace ends task %d on core %d which is not running there at t=%v", ev.Task, ev.Core, ev.T)
			}
			settle(ev.Core, r, ev.T)
			delete(open, ev.Core)
		}
	}
	for core, r := range open {
		return nil, fmt.Errorf("report: trace leaves task %d running on core %d", r.task, core)
	}
	return MergeTimeline(segs), nil
}

// MergeTimeline normalizes a timeline: segments are sorted by (core,
// start) and adjacent segments of the same task at the same rate are
// coalesced. The engine splits segments at every settle instant, so
// two recordings of the same execution compare equal only after this
// normalization.
func MergeTimeline(timeline []sim.TimelineSegment) []sim.TimelineSegment {
	segs := make([]sim.TimelineSegment, len(timeline))
	copy(segs, timeline)
	sort.SliceStable(segs, func(i, j int) bool {
		if segs[i].Core != segs[j].Core {
			return segs[i].Core < segs[j].Core
		}
		return segs[i].Start < segs[j].Start
	})
	out := segs[:0]
	for _, s := range segs {
		if n := len(out); n > 0 {
			p := &out[n-1]
			//dvfslint:allow floatcmp replay identity: adjacent segments share the same settle instant and table rate, exact by construction
			if p.Core == s.Core && p.TaskID == s.TaskID && p.Rate == s.Rate && p.End == s.Start {
				p.End = s.End
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// TraceGantt renders the Gantt chart of an event stream; the trace
// replay makes it identical to Gantt over the engine's merged
// recording of the same run.
func TraceGantt(w io.Writer, events []obs.Event) error {
	timeline, err := TimelineFromEvents(events)
	if err != nil {
		return err
	}
	return Gantt(w, timeline)
}

// TimelineCSV writes a timeline as core,task,start,end,rate_ghz rows
// with full float64 precision.
func TimelineCSV(w io.Writer, timeline []sim.TimelineSegment) error {
	rows := make([][]string, len(timeline))
	for i, s := range timeline {
		rows[i] = []string{
			strconv.Itoa(s.Core),
			strconv.Itoa(s.TaskID),
			strconv.FormatFloat(s.Start, 'g', -1, 64),
			strconv.FormatFloat(s.End, 'g', -1, 64),
			strconv.FormatFloat(s.Rate, 'g', -1, 64),
		}
	}
	return CSV(w, []string{"core", "task", "start", "end", "rate_ghz"}, rows)
}

// TraceCSV writes the execution timeline reconstructed from an event
// stream in TimelineCSV form.
func TraceCSV(w io.Writer, events []obs.Event) error {
	timeline, err := TimelineFromEvents(events)
	if err != nil {
		return err
	}
	return TimelineCSV(w, timeline)
}
