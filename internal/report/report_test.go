package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	var buf bytes.Buffer
	err := Bars(&buf, "chart", []Bar{
		{Label: "wbg", Value: 1.0},
		{Label: "olb", Value: 2.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "chart") || !strings.Contains(s, "wbg") || !strings.Contains(s, "olb") {
		t.Errorf("missing labels:\n%s", s)
	}
	// The larger bar must be longer.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths not proportional:\n%s", s)
	}
	if !strings.Contains(s, "2.000") {
		t.Errorf("value missing:\n%s", s)
	}
}

func TestBarsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, "", nil); err == nil {
		t.Error("empty chart accepted")
	}
	if err := Bars(&buf, "", []Bar{{Label: "x", Value: -1}}); err == nil {
		t.Error("negative value accepted")
	}
	if err := Bars(&buf, "", []Bar{{Label: "x", Value: math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
	// All-zero values are fine (zero-length bars).
	if err := Bars(&buf, "", []Bar{{Label: "x", Value: 0}}); err != nil {
		t.Errorf("zero bar rejected: %v", err)
	}
}

func TestGrouped(t *testing.T) {
	vals := map[string]map[string]float64{
		"time":   {"lmc": 1.0, "olb": 1.5},
		"energy": {"lmc": 1.0, "olb": 1.8},
	}
	var buf bytes.Buffer
	err := Grouped(&buf, "Fig. 3", []string{"lmc", "olb"}, []string{"time", "energy"},
		func(m, p string) float64 { return vals[m][p] })
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"Fig. 3", "[time]", "[energy]", "1.800"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	if err := Grouped(&buf, "", nil, []string{"x"}, nil); err == nil {
		t.Error("empty policies accepted")
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "sweep", "x", "y", []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "sweep") || !strings.Contains(s, "4.000") {
		t.Errorf("series output wrong:\n%s", s)
	}
	if err := Series(&buf, "", "x", "y", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}
