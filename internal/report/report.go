// Package report renders experiment results as text: horizontal bar
// charts for the paper's normalized-cost figures and aligned series
// tables for the sweeps. Output is deterministic and plain ASCII so
// it diffs cleanly in logs.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labeled value of a chart.
type Bar struct {
	// Label names the bar (a policy, a configuration).
	Label string
	// Value is the bar's magnitude; bars scale to the maximum.
	Value float64
}

// barWidth is the character width of the longest bar.
const barWidth = 44

// Bars renders a horizontal bar chart. Values must be non-negative
// and finite; the longest bar spans barWidth characters.
func Bars(w io.Writer, title string, bars []Bar) error {
	if len(bars) == 0 {
		return fmt.Errorf("report: no bars")
	}
	maxV, maxL := 0.0, 0
	for _, b := range bars {
		if b.Value < 0 || math.IsNaN(b.Value) || math.IsInf(b.Value, 0) {
			return fmt.Errorf("report: bad value %v for %q", b.Value, b.Label)
		}
		if b.Value > maxV {
			maxV = b.Value
		}
		if len(b.Label) > maxL {
			maxL = len(b.Label)
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	for _, b := range bars {
		n := 0
		if maxV > 0 {
			n = int(math.Round(b.Value / maxV * barWidth))
		}
		fmt.Fprintf(w, "  %-*s |%-*s| %.3f\n", maxL, b.Label, barWidth, strings.Repeat("#", n), b.Value)
	}
	return nil
}

// Grouped renders one chart per metric for a set of policies, the
// layout of the paper's three-panel cost figures. metrics maps a
// metric name to per-policy values; policies fixes the ordering.
func Grouped(w io.Writer, title string, policies []string, metrics []string, value func(metric, policy string) float64) error {
	if len(policies) == 0 || len(metrics) == 0 {
		return fmt.Errorf("report: empty grouped chart")
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	for _, m := range metrics {
		bars := make([]Bar, 0, len(policies))
		for _, p := range policies {
			bars = append(bars, Bar{Label: p, Value: value(m, p)})
		}
		if err := Bars(w, "  ["+m+"]", bars); err != nil {
			return err
		}
	}
	return nil
}

// Series renders a two-column numeric series with a header, for the
// sweep outputs.
func Series(w io.Writer, title, xName, yName string, xs, ys []float64) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("report: series lengths %d vs %d", len(xs), len(ys))
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	fmt.Fprintf(w, "  %12s %12s\n", xName, yName)
	for i := range xs {
		fmt.Fprintf(w, "  %12.3f %12.3f\n", xs[i], ys[i])
	}
	return nil
}
