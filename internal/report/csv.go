package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writes a header plus string rows in RFC-4180 form, for piping
// sweep series into plotting tools.
func CSV(w io.Writer, header []string, rows [][]string) error {
	if len(header) == 0 {
		return fmt.Errorf("report: empty CSV header")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("report: row %d has %d fields, header has %d", i, len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVFloats writes numeric rows with full float64 precision.
func CSVFloats(w io.Writer, header []string, rows [][]float64) error {
	srows := make([][]string, len(rows))
	for i, row := range rows {
		srow := make([]string, len(row))
		for j, v := range row {
			srow[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		srows[i] = srow
	}
	return CSV(w, header, srows)
}
