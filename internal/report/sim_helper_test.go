package report

import (
	"testing"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// runRecordedSim executes a small WBG plan with timeline recording on.
func runRecordedSim(t *testing.T) *sim.Result {
	t.Helper()
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 30, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 20, Deadline: model.NoDeadline},
	}
	plan, err := batch.WBG(params, batch.HomogeneousCores(2, platform.TableII()), tasks)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := sim.NewFixedPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Platform:       platform.Homogeneous(2, platform.TableII(), platform.Ideal{}),
		Policy:         fp,
		RecordTimeline: true,
	}, tasks, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	return res
}
