package report

import (
	"bytes"
	"strings"
	"testing"

	"dvfsched/internal/sim"
)

func TestGanttRendersLanes(t *testing.T) {
	timeline := []sim.TimelineSegment{
		{Core: 0, TaskID: 1, Start: 0, End: 5, Rate: 3.0},
		{Core: 1, TaskID: 2, Start: 0, End: 2, Rate: 1.6},
		{Core: 1, TaskID: 3, Start: 2, End: 10, Rate: 2.0},
	}
	var buf bytes.Buffer
	if err := Gantt(&buf, timeline); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "core  0") || !strings.Contains(s, "core  1") {
		t.Errorf("missing lanes:\n%s", s)
	}
	if !strings.Contains(s, "1") || !strings.Contains(s, "3") {
		t.Errorf("missing task digits:\n%s", s)
	}
	// Core 0 is idle for the second half: its lane must contain dots.
	lane0 := strings.Split(s, "\n")[0]
	if !strings.Contains(lane0, ".") {
		t.Errorf("idle time not shown:\n%s", lane0)
	}
}

func TestGanttValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, nil); err == nil {
		t.Error("empty timeline accepted")
	}
	bad := []sim.TimelineSegment{{Core: 0, TaskID: 1, Start: 5, End: 5}}
	if err := Gantt(&buf, bad); err == nil {
		t.Error("degenerate span accepted")
	}
}

func TestGanttFromSimulation(t *testing.T) {
	// End-to-end: record a real run's timeline and render it.
	res := runRecordedSim(t)
	var buf bytes.Buffer
	if err := Gantt(&buf, res.Timeline); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) < 3 {
		t.Errorf("unexpected gantt:\n%s", buf.String())
	}
}

func TestGanttCollisionRendersStar(t *testing.T) {
	// Two different tasks mapped to the same cell render '*'.
	timeline := []sim.TimelineSegment{
		{Core: 0, TaskID: 1, Start: 0, End: 0.001},
		{Core: 0, TaskID: 2, Start: 0.0005, End: 100},
	}
	var buf bytes.Buffer
	if err := Gantt(&buf, timeline); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Errorf("collision not marked:\n%s", buf.String())
	}
}
