// Package trace reads and writes task traces as JSON Lines, one task
// per line. It is the interchange format between the workload
// generators (cmd/tracegen), external traces, and the simulators.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dvfsched/internal/model"
)

// Record is the JSONL wire format of one task. Deadline is omitted
// (null) for tasks without one, since JSON cannot carry +Inf.
type Record struct {
	ID          int      `json:"id"`
	Name        string   `json:"name,omitempty"`
	Cycles      float64  `json:"cycles"`
	Arrival     float64  `json:"arrival"`
	Deadline    *float64 `json:"deadline,omitempty"`
	Interactive bool     `json:"interactive,omitempty"`
}

// FromTask converts a model task to its wire form.
func FromTask(t model.Task) Record {
	r := Record{
		ID:          t.ID,
		Name:        t.Name,
		Cycles:      t.Cycles,
		Arrival:     t.Arrival,
		Interactive: t.Interactive,
	}
	if t.HasDeadline() {
		d := t.Deadline
		r.Deadline = &d
	}
	return r
}

// Task converts the wire form back to a model task.
func (r Record) Task() model.Task {
	t := model.Task{
		ID:          r.ID,
		Name:        r.Name,
		Cycles:      r.Cycles,
		Arrival:     r.Arrival,
		Deadline:    model.NoDeadline,
		Interactive: r.Interactive,
	}
	if r.Deadline != nil {
		t.Deadline = *r.Deadline
	}
	return t
}

// Write emits the task set as JSONL.
func Write(w io.Writer, tasks model.TaskSet) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range tasks {
		if err := enc.Encode(FromTask(t)); err != nil {
			return fmt.Errorf("trace: encoding task %d: %w", t.ID, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL trace and validates it.
func Read(r io.Reader) (model.TaskSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var tasks model.TaskSet
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.Deadline != nil && (math.IsNaN(*rec.Deadline) || math.IsInf(*rec.Deadline, 0)) {
			return nil, fmt.Errorf("trace: line %d: non-finite deadline", line)
		}
		tasks = append(tasks, rec.Task())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	return tasks, nil
}
