package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	cfg := workload.DefaultJudgeConfig()
	cfg.Interactive, cfg.NonInteractive = 50, 10
	tasks, err := cfg.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tasks) {
		t.Fatalf("lengths: %d vs %d", len(back), len(tasks))
	}
	for i := range tasks {
		if tasks[i] != back[i] {
			t.Fatalf("task %d changed: %+v vs %+v", i, tasks[i], back[i])
		}
	}
}

func TestNoDeadlineEncodesAsNull(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 2, Deadline: model.NoDeadline}}
	var buf bytes.Buffer
	if err := Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "deadline") {
		t.Errorf("NoDeadline leaked into JSON: %s", buf.String())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].HasDeadline() {
		t.Error("deadline materialized from nothing")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"id":1,"cycles":-5,"arrival":0}` + "\n")); err == nil {
		t.Error("invalid task accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := `{"id":1,"cycles":2,"arrival":0}` + "\n\n" + `{"id":2,"cycles":3,"arrival":1}` + "\n"
	tasks, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("tasks = %d", len(tasks))
	}
}
