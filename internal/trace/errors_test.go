package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// validLines renders n valid records, one per line.
func validLines(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `{"id":%d,"cycles":%d,"arrival":%d}`+"\n", i, i+1, i)
	}
	return sb.String()
}

// TestReadTruncatedFile cuts a trace mid-record — the classic
// interrupted download / partial write — and requires a parse error
// naming the broken line, at every cut point inside the final record.
func TestReadTruncatedFile(t *testing.T) {
	full := validLines(3)
	lastStart := strings.LastIndex(strings.TrimRight(full, "\n"), "\n") + 1
	for cut := lastStart + 1; cut < len(full)-1; cut++ {
		_, err := Read(strings.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut at %d accepted: %q", cut, full[:cut])
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Fatalf("cut at %d: error %q does not name line 3", cut, err)
		}
	}
	// A cut exactly on a line boundary is indistinguishable from a
	// shorter valid trace: it must parse, with fewer tasks.
	tasks, err := Read(strings.NewReader(full[:lastStart]))
	if err != nil {
		t.Fatalf("line-boundary cut rejected: %v", err)
	}
	if len(tasks) != 2 {
		t.Fatalf("line-boundary cut has %d tasks, want 2", len(tasks))
	}
}

// TestReadBadRecordMidStream corrupts one line in the middle of an
// otherwise valid trace: the reader must reject the whole trace (no
// partial task set) and name the offending line.
func TestReadBadRecordMidStream(t *testing.T) {
	cases := []struct {
		name string
		bad  string
	}{
		{"malformed json", `{"id":10,"cycles":`},
		{"wrong json type", `["not","an","object"]`},
		{"non-finite deadline", `{"id":10,"cycles":5,"arrival":1,"deadline":1e999}`},
		{"binary garbage", "\x00\xff\xfe"},
	}
	for _, tc := range cases {
		in := validLines(2) + tc.bad + "\n" + `{"id":11,"cycles":5,"arrival":2}` + "\n"
		tasks, err := Read(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: accepted with %d tasks", tc.name, len(tasks))
			continue
		}
		if tasks != nil {
			t.Errorf("%s: returned a partial task set alongside the error", tc.name)
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("%s: error %q does not name line 3", tc.name, err)
		}
	}
}

// TestReadSemanticErrorMidStream checks records that parse but fail
// validation (the error then comes from the task set, not the line
// scanner).
func TestReadSemanticErrorMidStream(t *testing.T) {
	in := validLines(2) + `{"id":0,"cycles":9,"arrival":5}` + "\n" // duplicate ID 0
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("duplicate ID mid-stream accepted")
	}
}

// failingReader yields its payload, then a non-EOF error — a stand-in
// for a dropped connection or failing disk.
type failingReader struct {
	data []byte
	err  error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.err
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

// TestReadPropagatesIOError requires mid-stream transport errors to
// surface (wrapped), not to be swallowed as a short valid trace.
func TestReadPropagatesIOError(t *testing.T) {
	sentinel := errors.New("connection reset")
	_, err := Read(&failingReader{data: []byte(validLines(2)), err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped %v", err, sentinel)
	}
}

// TestReadOversizedLine exceeds the scanner's 16 MiB line budget and
// expects a clean bufio.ErrTooLong, not an OOM or silent truncation.
func TestReadOversizedLine(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"id":1,"cycles":2,"arrival":0,"name":"`)
	buf.Write(bytes.Repeat([]byte("x"), 17*1024*1024))
	buf.WriteString("\"}\n")
	_, err := Read(&buf)
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
}

// TestReadEOFWithoutNewline accepts a final record with no trailing
// newline — the scanner treats EOF as a line end.
func TestReadEOFWithoutNewline(t *testing.T) {
	in := strings.TrimRight(validLines(2), "\n")
	tasks, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(tasks))
	}
}
