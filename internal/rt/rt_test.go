package rt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func sampleSet() TaskSet {
	return TaskSet{
		{ID: 1, Name: "control", WCET: 0.5, Period: 0.01, BCETFraction: 0.4},
		{ID: 2, Name: "sense", WCET: 0.8, Period: 0.02, BCETFraction: 0.5},
		{ID: 3, Name: "log", WCET: 2.0, Period: 0.1, BCETFraction: 0.3},
	}
}

func TestTaskValidation(t *testing.T) {
	bad := []PeriodicTask{
		{ID: 1, WCET: 0, Period: 1, BCETFraction: 1},
		{ID: 1, WCET: 1, Period: 0, BCETFraction: 1},
		{ID: 1, WCET: 1, Period: 1, BCETFraction: 0},
		{ID: 1, WCET: 1, Period: 1, BCETFraction: 1.5},
	}
	for _, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("accepted %+v", task)
		}
	}
	dup := TaskSet{
		{ID: 1, WCET: 1, Period: 1, BCETFraction: 1},
		{ID: 1, WCET: 1, Period: 2, BCETFraction: 1},
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if err := (TaskSet{}).Validate(); err == nil {
		t.Error("empty set accepted")
	}
}

func TestCycleUtilization(t *testing.T) {
	ts := sampleSet()
	// 0.5/0.01 + 0.8/0.02 + 2/0.1 = 50 + 40 + 20 = 110 Gcyc/s.
	if got := ts.CycleUtilization(); math.Abs(got-110) > 1e-9 {
		t.Errorf("utilization = %v, want 110", got)
	}
}

func TestStaticOptimalLevel(t *testing.T) {
	rates := model.MustRateTable([]model.RateLevel{
		{Rate: 100, Energy: 1, Time: 0.01}, // 100 Gcyc/s
		{Rate: 120, Energy: 1.5, Time: 1.0 / 120},
		{Rate: 200, Energy: 3, Time: 0.005},
	})
	// Utilization 110 Gcyc/s: 100 is too slow, 120 is the slowest
	// feasible.
	l, err := StaticOptimalLevel(sampleSet(), rates)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rate != 120 {
		t.Errorf("static level = %v, want 120", l.Rate)
	}
	heavy := TaskSet{{ID: 1, WCET: 300, Period: 1, BCETFraction: 1}}
	if _, err := StaticOptimalLevel(heavy, rates); err == nil {
		t.Error("overloaded set accepted")
	}
}

func TestHyperperiod(t *testing.T) {
	h, err := Hyperperiod(sampleSet())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.1) > 1e-9 { // lcm(10ms, 20ms, 100ms) = 100ms
		t.Errorf("hyperperiod = %v, want 0.1", h)
	}
	odd := TaskSet{{ID: 1, WCET: 1, Period: 0.0105111, BCETFraction: 1}}
	if _, err := Hyperperiod(odd); err == nil {
		t.Error("non-millisecond period accepted")
	}
}

func TestExpandJobWindows(t *testing.T) {
	ts := sampleSet()
	jobs, err := Expand(ts, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 10 + 5 + 1 = 16 jobs in one hyperperiod.
	if len(jobs) != 16 {
		t.Fatalf("jobs = %d, want 16", len(jobs))
	}
	for _, j := range jobs {
		if j.Deadline-j.Release <= 0 {
			t.Error("non-positive window")
		}
		if j.Cycles != j.WCET {
			t.Error("nil rng must give worst-case demands")
		}
	}
	withRng, err := Expand(ts, 0.1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	sawEarly := false
	for _, j := range withRng {
		if j.Cycles > j.WCET+1e-12 {
			t.Error("actual demand exceeds WCET")
		}
		if j.Cycles < j.WCET {
			sawEarly = true
		}
	}
	if !sawEarly {
		t.Error("rng never produced early completion")
	}
}

func TestPartitionFirstFit(t *testing.T) {
	rates := platform.TableII() // max 3.0 GHz = 3 Gcyc/s
	ts := TaskSet{
		{ID: 1, WCET: 2, Period: 1, BCETFraction: 1},   // U=2
		{ID: 2, WCET: 1.5, Period: 1, BCETFraction: 1}, // U=1.5
		{ID: 3, WCET: 1, Period: 1, BCETFraction: 1},   // U=1
		{ID: 4, WCET: 0.5, Period: 1, BCETFraction: 1}, // U=0.5
	}
	parts, err := PartitionFirstFit(ts, rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if len(p) > 0 && !p.Schedulable(rates.Max()) {
			t.Error("partition not schedulable at max rate")
		}
	}
	if _, err := PartitionFirstFit(ts, rates, 1); err == nil {
		t.Error("overloaded single core accepted")
	}
	if _, err := PartitionFirstFit(ts, rates, 0); err == nil {
		t.Error("zero cores accepted")
	}
}

func rtRates() *model.RateTable {
	// A small ladder in Gcyc/s with quadratic energy.
	return model.MustRateTable([]model.RateLevel{
		{Rate: 50, Energy: 1, Time: 0.02},
		{Rate: 100, Energy: 4, Time: 0.01},
		{Rate: 150, Energy: 9, Time: 1.0 / 150},
		{Rate: 200, Energy: 16, Time: 0.005},
	})
}

func TestRunEDFNoMissesAllModes(t *testing.T) {
	ts := sampleSet() // 110 Gcyc/s -> static level 150
	for _, mode := range []SpeedMode{RaceToIdle, StaticDVS, CycleConservingDVS} {
		res, err := RunEDF(ts, rtRates(), 1.0, rand.New(rand.NewSource(2)), mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Misses != 0 {
			t.Errorf("%v: %d deadline misses", mode, res.Misses)
		}
		if res.Jobs != 160 {
			t.Errorf("%v: jobs = %d", mode, res.Jobs)
		}
	}
}

func TestDVSEnergyOrdering(t *testing.T) {
	// With early completions, cycle-conserving <= static <= race.
	ts := sampleSet()
	rng := func() *rand.Rand { return rand.New(rand.NewSource(3)) }
	race, err := RunEDF(ts, rtRates(), 1.0, rng(), RaceToIdle)
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunEDF(ts, rtRates(), 1.0, rng(), StaticDVS)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := RunEDF(ts, rtRates(), 1.0, rng(), CycleConservingDVS)
	if err != nil {
		t.Fatal(err)
	}
	if !(cc.EnergyJ < static.EnergyJ && static.EnergyJ < race.EnergyJ) {
		t.Errorf("energy ordering violated: cc=%v static=%v race=%v",
			cc.EnergyJ, static.EnergyJ, race.EnergyJ)
	}
	if cc.Switches == 0 {
		t.Error("cycle-conserving never changed frequency")
	}
}

func TestRunEDFOverloadedStaticErrors(t *testing.T) {
	heavy := TaskSet{{ID: 1, WCET: 300, Period: 1, BCETFraction: 1}}
	if _, err := RunEDF(heavy, rtRates(), 1, nil, StaticDVS); err == nil {
		t.Error("overloaded static run accepted")
	}
}

// Property: for random schedulable sets, EDF with static DVS never
// misses a deadline (the U*T(p) <= 1 bound).
func TestEDFSchedulabilityProperty(t *testing.T) {
	rates := rtRates()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		ts := make(TaskSet, n)
		// Target utilization below the max rate.
		for i := range ts {
			period := float64(1+rng.Intn(20)) / 100 // 10..200 ms
			u := (20 + rng.Float64()*160/float64(n)) / float64(n)
			ts[i] = PeriodicTask{
				ID: i, WCET: u * period, Period: period,
				BCETFraction: 0.3 + rng.Float64()*0.7,
			}
		}
		if !ts.Schedulable(rates.Max()) {
			return true // skip overloaded draws
		}
		for _, mode := range []SpeedMode{StaticDVS, CycleConservingDVS} {
			res, err := RunEDF(ts, rates, 0.6, rand.New(rand.NewSource(seed+1)), mode)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if res.Misses != 0 {
				t.Logf("seed %d mode %v: %d misses (U=%v)", seed, mode, res.Misses, ts.CycleUtilization())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSpeedModeString(t *testing.T) {
	for _, m := range []SpeedMode{StaticDVS, CycleConservingDVS, RaceToIdle, SpeedMode(99)} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
}
