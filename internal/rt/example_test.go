package rt_test

import (
	"fmt"

	"dvfsched/internal/model"
	"dvfsched/internal/rt"
)

// Find the static EDF-DVS level of a periodic task set and expand one
// hyperperiod of jobs.
func ExampleStaticOptimalLevel() {
	rates := model.MustRateTable([]model.RateLevel{
		{Rate: 50, Energy: 1, Time: 0.02},
		{Rate: 100, Energy: 4, Time: 0.01},
		{Rate: 200, Energy: 16, Time: 0.005},
	})
	tasks := rt.TaskSet{
		{ID: 1, WCET: 0.3, Period: 0.01, BCETFraction: 1}, // 30 Gcyc/s
		{ID: 2, WCET: 1.0, Period: 0.02, BCETFraction: 1}, // 50 Gcyc/s
	}
	level, err := rt.StaticOptimalLevel(tasks, rates)
	if err != nil {
		panic(err)
	}
	h, _ := rt.Hyperperiod(tasks)
	jobs, _ := rt.Expand(tasks, h, nil)
	fmt.Printf("U = %.0f Gcyc/s -> slowest schedulable level %.0f Gcyc/s\n",
		tasks.CycleUtilization(), level.Rate)
	fmt.Printf("%d jobs per %.0f ms hyperperiod\n", len(jobs), h*1000)
	// Output:
	// U = 80 Gcyc/s -> slowest schedulable level 100 Gcyc/s
	// 3 jobs per 20 ms hyperperiod
}
