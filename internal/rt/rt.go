// Package rt implements the periodic real-time DVS setting the paper
// positions itself against (Section VI cites Yao et al., Pillai &
// Shin's RT-DVS, and Aydin et al.): periodic tasks with implicit
// deadlines on one core, scheduled by preemptive EDF, with two
// classic frequency policies —
//
//   - Static EDF-DVS: the lowest single frequency at which the task
//     set remains schedulable (utilization test U·T(p) ≤ 1),
//   - Cycle-conserving EDF-DVS: the utilization estimate uses each
//     task's worst case at release and its actual consumption at
//     completion, so the frequency drops whenever jobs finish early.
//
// Multi-core use is partitioned (first-fit by utilization), matching
// how the cited single-core schemes extend to multi-cores.
package rt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dvfsched/internal/model"
)

// PeriodicTask is a periodic real-time task with an implicit deadline
// (deadline = period).
type PeriodicTask struct {
	// ID identifies the task.
	ID int
	// Name is an optional label.
	Name string
	// WCET is the worst-case execution demand in Gcycles.
	WCET float64
	// Period is the release period in seconds.
	Period float64
	// BCETFraction is the best case as a fraction of WCET (0..1];
	// actual job demands are drawn uniformly from
	// [BCETFraction*WCET, WCET]. 1 means every job uses its WCET.
	BCETFraction float64
}

// Validate checks the task definition.
func (t PeriodicTask) Validate() error {
	switch {
	case t.WCET <= 0 || math.IsNaN(t.WCET) || math.IsInf(t.WCET, 0):
		return fmt.Errorf("rt: task %d: WCET must be positive, got %v", t.ID, t.WCET)
	case t.Period <= 0 || math.IsNaN(t.Period) || math.IsInf(t.Period, 0):
		return fmt.Errorf("rt: task %d: period must be positive, got %v", t.ID, t.Period)
	case t.BCETFraction <= 0 || t.BCETFraction > 1:
		return fmt.Errorf("rt: task %d: BCET fraction must be in (0,1], got %v", t.ID, t.BCETFraction)
	}
	return nil
}

// TaskSet is a set of periodic tasks.
type TaskSet []PeriodicTask

// Validate checks every task and ID uniqueness.
func (ts TaskSet) Validate() error {
	if len(ts) == 0 {
		return fmt.Errorf("rt: empty task set")
	}
	seen := map[int]bool{}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("rt: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// CycleUtilization returns U_cyc = Σ WCET_i / Period_i in Gcycles per
// second: the processing rate the set demands in the worst case.
func (ts TaskSet) CycleUtilization() float64 {
	var u float64
	for _, t := range ts {
		u += t.WCET / t.Period
	}
	return u
}

// Schedulable reports whether preemptive EDF meets every deadline at
// the given level: U_cyc · T(p) ≤ 1 (the classic EDF bound with
// per-cycle time T).
func (ts TaskSet) Schedulable(level model.RateLevel) bool {
	return ts.CycleUtilization()*level.Time <= 1+1e-12
}

// StaticOptimalLevel returns the slowest level at which the set is
// schedulable (static EDF-DVS), or an error if even the fastest level
// is overloaded.
func StaticOptimalLevel(ts TaskSet, rates *model.RateTable) (model.RateLevel, error) {
	if err := ts.Validate(); err != nil {
		return model.RateLevel{}, err
	}
	if err := rates.Validate(); err != nil {
		return model.RateLevel{}, err
	}
	for i := 0; i < rates.Len(); i++ {
		if ts.Schedulable(rates.Level(i)) {
			return rates.Level(i), nil
		}
	}
	return model.RateLevel{}, fmt.Errorf("rt: utilization %.3f Gcyc/s exceeds the fastest level", ts.CycleUtilization())
}

// msPeriod converts a period to integer milliseconds, required for an
// exact hyperperiod.
func msPeriod(p float64) (int64, error) {
	ms := p * 1000
	r := math.Round(ms)
	if math.Abs(ms-r) > 1e-6 || r <= 0 {
		return 0, fmt.Errorf("rt: period %v s is not a whole number of milliseconds", p)
	}
	return int64(r), nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Hyperperiod returns the least common multiple of the periods, in
// seconds. Periods must be whole milliseconds and the LCM must fit.
func Hyperperiod(ts TaskSet) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	lcm := int64(1)
	for _, t := range ts {
		ms, err := msPeriod(t.Period)
		if err != nil {
			return 0, err
		}
		g := gcd(lcm, ms)
		next := lcm / g
		if next > math.MaxInt64/ms {
			return 0, fmt.Errorf("rt: hyperperiod overflow")
		}
		lcm = next * ms
	}
	return float64(lcm) / 1000, nil
}

// Job is one released instance of a periodic task.
type Job struct {
	// Task is the generating task's ID.
	Task int
	// Release and Deadline bound the job's window in seconds.
	Release, Deadline float64
	// Cycles is the job's actual demand in Gcycles (≤ WCET).
	Cycles float64
	// WCET is the generating task's worst case, for the
	// cycle-conserving bookkeeping.
	WCET float64
}

// Expand releases every job of the set over [0, horizon). Actual
// demands are drawn from [BCETFraction·WCET, WCET] using rng; a nil
// rng yields worst-case demands.
func Expand(ts TaskSet, horizon float64, rng *rand.Rand) ([]Job, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("rt: horizon must be positive")
	}
	var jobs []Job
	for _, t := range ts {
		for k := 0; ; k++ {
			release := float64(k) * t.Period
			if release >= horizon-1e-12 {
				break
			}
			cycles := t.WCET
			if rng != nil && t.BCETFraction < 1 {
				lo := t.BCETFraction * t.WCET
				cycles = lo + rng.Float64()*(t.WCET-lo)
			}
			jobs = append(jobs, Job{
				Task:     t.ID,
				Release:  release,
				Deadline: release + t.Period,
				Cycles:   cycles,
				WCET:     t.WCET,
			})
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool {
		//dvfslint:allow floatcmp sort tie-break needs a strict weak order; epsilon equality is intransitive
		if jobs[i].Release != jobs[j].Release {
			return jobs[i].Release < jobs[j].Release
		}
		return jobs[i].Task < jobs[j].Task
	})
	return jobs, nil
}

// PartitionFirstFit assigns tasks to cores first-fit by decreasing
// utilization, the standard partitioned extension of single-core
// EDF-DVS. Every core uses the same rate table; a set that fits no
// core yields an error.
func PartitionFirstFit(ts TaskSet, rates *model.RateTable, cores int) ([]TaskSet, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("rt: need at least one core")
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	sorted := make(TaskSet, len(ts))
	copy(sorted, ts)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].WCET/sorted[i].Period > sorted[j].WCET/sorted[j].Period
	})
	parts := make([]TaskSet, cores)
	maxT := rates.Max().Time
	for _, t := range sorted {
		placed := false
		for j := range parts {
			u := append(parts[j], t).CycleUtilization()
			if u*maxT <= 1+1e-12 {
				parts[j] = append(parts[j], t)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("rt: task %d does not fit on any of %d cores", t.ID, cores)
		}
	}
	return parts, nil
}
