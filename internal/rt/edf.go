package rt

import (
	"fmt"
	"math/rand"
	"sort"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// SpeedMode selects the frequency policy of the EDF scheduler.
type SpeedMode int

const (
	// StaticDVS pins the static optimal level (slowest schedulable).
	StaticDVS SpeedMode = iota
	// CycleConservingDVS recomputes the utilization with actual
	// consumptions at completions (Pillai & Shin).
	CycleConservingDVS
	// RaceToIdle pins the maximum level.
	RaceToIdle
)

func (m SpeedMode) String() string {
	switch m {
	case StaticDVS:
		return "static-dvs"
	case CycleConservingDVS:
		return "cycle-conserving"
	case RaceToIdle:
		return "race-to-idle"
	default:
		return "unknown"
	}
}

// edfPolicy is a single-core preemptive EDF scheduler (sim.Policy)
// with a DVS speed mode.
type edfPolicy struct {
	tasks   map[int]PeriodicTask // task ID -> definition
	jobTask map[int]int          // job (sim task) ID -> task ID
	mode    SpeedMode
	static  model.RateLevel
	c       map[int]float64 // cycle-conserving per-task demand estimate
	ready   []*sim.TaskState
}

func (p *edfPolicy) Name() string { return "edf+" + p.mode.String() }

func (p *edfPolicy) Init(e *sim.Engine) {
	if e.NumCores() != 1 {
		panic("rt: the EDF policy is single-core; partition first")
	}
}

// level returns the current frequency for dispatching.
func (p *edfPolicy) level(e *sim.Engine) model.RateLevel {
	rt := e.RateTable(0)
	switch p.mode {
	case RaceToIdle:
		return rt.Max()
	case StaticDVS:
		return p.static
	default: // CycleConservingDVS
		var u float64
		for id, t := range p.tasks {
			u += p.c[id] / t.Period
		}
		for i := 0; i < rt.Len(); i++ {
			if u*rt.Level(i).Time <= 1+1e-12 {
				return rt.Level(i)
			}
		}
		return rt.Max()
	}
}

func (p *edfPolicy) OnArrival(e *sim.Engine, ts *sim.TaskState) {
	taskID := p.jobTask[ts.Task.ID]
	if p.mode == CycleConservingDVS {
		// At release, assume the worst case again.
		p.c[taskID] = p.tasks[taskID].WCET
	}
	level := p.level(e)
	run := e.Running(0)
	switch {
	case run == nil:
		if err := e.Start(0, ts, level); err != nil {
			panic(err)
		}
	case run.Task.Deadline > ts.Task.Deadline:
		prev, err := e.Preempt(0)
		if err != nil {
			panic(err)
		}
		p.push(prev)
		if err := e.Start(0, ts, level); err != nil {
			panic(err)
		}
	default:
		p.push(ts)
		// A release can raise the cycle-conserving utilization; keep
		// the running job at the refreshed level.
		if !model.ApproxEq(e.CurrentLevel(0).Rate, level.Rate, model.DefaultEps) {
			if err := e.SetLevel(0, level); err != nil {
				panic(err)
			}
		}
	}
}

func (p *edfPolicy) OnCompletion(e *sim.Engine, _ int, done *sim.TaskState) {
	if p.mode == CycleConservingDVS {
		// The completed job used only its actual cycles; until its
		// next release its task cannot demand more.
		p.c[p.jobTask[done.Task.ID]] = done.Task.Cycles
	}
	if len(p.ready) == 0 {
		return
	}
	next := p.ready[0]
	p.ready = p.ready[1:]
	if err := e.Start(0, next, p.level(e)); err != nil {
		panic(err)
	}
}

func (p *edfPolicy) OnTick(*sim.Engine) {}

// push inserts a job into the deadline-sorted ready list.
func (p *edfPolicy) push(ts *sim.TaskState) {
	i := sort.Search(len(p.ready), func(i int) bool {
		return p.ready[i].Task.Deadline > ts.Task.Deadline
	})
	p.ready = append(p.ready, nil)
	copy(p.ready[i+1:], p.ready[i:])
	p.ready[i] = ts
}

// Result summarizes an EDF-DVS run over one hyperperiod (or any
// horizon).
type Result struct {
	// Mode is the speed policy used.
	Mode SpeedMode
	// Jobs is the number of jobs released.
	Jobs int
	// Misses counts deadline violations (0 when the set is
	// schedulable).
	Misses int
	// EnergyJ is the total energy in joules.
	EnergyJ float64
	// Switches counts frequency transitions.
	Switches int
}

// RunEDF expands the periodic set over the horizon (a nil rng means
// worst-case demands), schedules it with preemptive EDF under the
// chosen speed mode on one core with the given rates, and reports
// energy and deadline misses.
func RunEDF(ts TaskSet, rates *model.RateTable, horizon float64, rng *rand.Rand, mode SpeedMode) (*Result, error) {
	jobs, err := Expand(ts, horizon, rng)
	if err != nil {
		return nil, err
	}
	static, err := StaticOptimalLevel(ts, rates)
	if err != nil && mode != RaceToIdle {
		return nil, err
	}
	pol := &edfPolicy{
		tasks:   map[int]PeriodicTask{},
		jobTask: map[int]int{},
		mode:    mode,
		static:  static,
		c:       map[int]float64{},
	}
	for _, t := range ts {
		pol.tasks[t.ID] = t
		pol.c[t.ID] = t.WCET
	}
	simTasks := make(model.TaskSet, len(jobs))
	for i, j := range jobs {
		simTasks[i] = model.Task{
			ID:       i,
			Cycles:   j.Cycles,
			Arrival:  j.Release,
			Deadline: j.Deadline,
		}
		pol.jobTask[i] = j.Task
	}
	plat := platform.Homogeneous(1, rates, platform.Ideal{})
	// Cost params are irrelevant to the RT comparison; any valid
	// values work since we read raw energy.
	res, err := sim.Run(sim.Config{Platform: plat, Policy: pol}, simTasks, model.CostParams{Re: 1, Rt: 1})
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	out := &Result{Mode: mode, Jobs: len(jobs), EnergyJ: res.ActiveEnergy, Switches: res.Switches}
	for _, t := range res.Tasks {
		if t.Completion > t.Task.Deadline+1e-6 {
			out.Misses++
		}
	}
	return out, nil
}
