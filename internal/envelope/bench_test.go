package envelope_test

import (
	"testing"

	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

var benchParams = model.CostParams{Re: 0.1, Rt: 0.4}

// BenchmarkCompute measures building the dominating-position envelope
// from the 12-level i7 menu — the upper-hull sweep every scheduler
// constructor pays once.
func BenchmarkCompute(b *testing.B) {
	rates := platform.IntelI7950()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := envelope.Compute(benchParams, rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLevelFor measures the per-position level lookup on the hot
// scheduling path.
func BenchmarkLevelFor(b *testing.B) {
	env := envelope.MustCompute(benchParams, platform.IntelI7950())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.LevelFor(1 + i%1000)
	}
}
