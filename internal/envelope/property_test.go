package envelope

import (
	"math"
	"math/rand"
	"testing"

	"dvfsched/internal/model"
)

// randomTable builds a random rate table satisfying the paper's model
// assumptions: rates and E(p) strictly increasing, T(p) strictly
// decreasing, all positive.
func randomTable(rng *rand.Rand, n int) *model.RateTable {
	levels := make([]model.RateLevel, n)
	rate := 0.2 + rng.Float64()*0.3
	energy := 0.1 + rng.Float64()
	time := 5 + rng.Float64()*5
	for i := range levels {
		levels[i] = model.RateLevel{Rate: rate, Energy: energy, Time: time}
		rate += 0.1 + rng.Float64()
		energy += 0.05 + rng.Float64()*2
		time *= 0.5 + rng.Float64()*0.45
	}
	return model.MustRateTable(levels)
}

const propMaxK = 200

// TestEnvelopeProperties drives Algorithm 1 against random rate tables
// and checks, for every backward position up to propMaxK:
//
//   - the envelope's choice matches the O(|P|) per-position brute
//     force (so the whole sweep matches the O(|P|^2) table build),
//   - the envelope's cost dominates every raw level's line,
//   - the ranges partition [1, inf) contiguously with strictly
//     increasing rates, and
//   - the resulting C^B(k) is increasing and concave (it is a lower
//     envelope of increasing lines), the shape Theorem 2 relies on.
func TestEnvelopeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		rt := randomTable(rng, 1+rng.Intn(12))
		cp := model.CostParams{Re: 0.05 + rng.Float64()*2, Rt: 0.05 + rng.Float64()*2}
		env, err := Compute(cp, rt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		checkRangeStructure(t, trial, env, rt)

		prevCost := math.Inf(-1)
		prevInc := math.Inf(1)
		for k := 1; k <= propMaxK; k++ {
			got := env.Cost(k)
			_, want := cp.BestBackwardLevel(k, rt)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d: k=%d envelope cost %v != brute force %v\nparams %+v table %v",
					trial, k, got, want, cp, rt)
			}
			for i := 0; i < rt.Len(); i++ {
				if raw := cp.BackwardPositionCost(k, rt.Level(i)); got > raw*(1+1e-12) {
					t.Fatalf("trial %d: k=%d envelope cost %v beaten by level %d at %v",
						trial, k, got, i, raw)
				}
			}
			if got <= prevCost {
				t.Fatalf("trial %d: C^B not increasing at k=%d: %v then %v", trial, k, prevCost, got)
			}
			if inc := got - prevCost; k > 1 {
				if inc > prevInc*(1+1e-9) {
					t.Fatalf("trial %d: C^B not concave at k=%d: increment %v after %v",
						trial, k, inc, prevInc)
				}
				prevInc = inc
			}
			prevCost = got
		}
	}
}

func checkRangeStructure(t *testing.T, trial int, env *Envelope, rt *model.RateTable) {
	t.Helper()
	ranges := env.Ranges()
	if len(ranges) == 0 || len(ranges) > rt.Len() {
		t.Fatalf("trial %d: %d ranges for %d levels", trial, len(ranges), rt.Len())
	}
	if ranges[0].Lo != 1 {
		t.Fatalf("trial %d: first range starts at %d", trial, ranges[0].Lo)
	}
	if ranges[len(ranges)-1].Hi != Unbounded {
		t.Fatalf("trial %d: last range bounded at %d", trial, ranges[len(ranges)-1].Hi)
	}
	for i, r := range ranges {
		if rt.Level(r.LevelIndex) != r.Level {
			t.Fatalf("trial %d: range %d level/index mismatch", trial, i)
		}
		if i == 0 {
			continue
		}
		prev := ranges[i-1]
		if r.Lo != prev.Hi+1 {
			t.Fatalf("trial %d: gap between ranges %d and %d: %s then %s", trial, i-1, i, prev, r)
		}
		// Larger backward positions delay more tasks, so time cost
		// dominates and faster rates win: rates strictly increase
		// across ranges.
		if r.Level.Rate <= prev.Level.Rate {
			t.Fatalf("trial %d: rates not increasing across ranges: %s then %s", trial, prev, r)
		}
	}
}

// TestEnvelopeSingleLevel pins the degenerate |P| = 1 case: one range
// covering everything.
func TestEnvelopeSingleLevel(t *testing.T) {
	rt := model.MustRateTable([]model.RateLevel{{Rate: 1, Energy: 2, Time: 1}})
	env := MustCompute(model.CostParams{Re: 1, Rt: 1}, rt)
	if env.NumRanges() != 1 {
		t.Fatalf("ranges = %d", env.NumRanges())
	}
	r := env.Range(0)
	if r.Lo != 1 || r.Hi != Unbounded || r.Level.Rate != 1 {
		t.Errorf("range = %+v", r)
	}
}
