package envelope

import (
	"math"
	"sync"
	"sync/atomic"

	"dvfsched/internal/model"
)

// Cache memoizes Compute results, keyed by the *content* of the
// (CostParams, RateTable) pair: platform presets construct a fresh
// *model.RateTable per call, so pointer identity would never hit.
// Envelopes are immutable, so one cached instance may be shared by any
// number of cores, sessions and goroutines.
//
// Reads are RCU-style: the entry list is an immutable snapshot behind
// an atomic.Value, so the hit path takes no locks and performs no
// allocations. Misses serialize on a mutex, copy the snapshot, append
// and swap. When the cache reaches capacity the next miss starts a
// fresh epoch (drops every entry); with the handful of platform
// configurations a process sees in practice, eviction never fires.
type Cache struct {
	max    int
	cur    atomic.Value // []cacheEntry snapshot
	mu     sync.Mutex   // serializes the miss path
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	hash   uint64
	params model.CostParams
	levels []model.RateLevel
	env    *Envelope
}

// DefaultCacheSize bounds the shared cache: far above the number of
// distinct (params, table) pairs a process is expected to see.
const DefaultCacheSize = 64

var shared = NewCache(DefaultCacheSize)

// Shared returns the process-wide envelope cache used by default by
// the high-level core API.
func Shared() *Cache { return shared }

// NewCache returns an empty cache holding at most max envelopes; max
// <= 0 means DefaultCacheSize.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{max: max}
}

// keyHash is FNV-1a over the exact IEEE-754 bits of the cost constants
// and every rate level, plus the level count. Exact bits, not epsilon
// comparison: the cache must only unify inputs Compute itself would
// treat identically.
func keyHash(cp model.CostParams, rt *model.RateTable) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(math.Float64bits(cp.Re))
	mix(math.Float64bits(cp.Rt))
	mix(uint64(rt.Len()))
	for i := 0; i < rt.Len(); i++ {
		l := rt.Level(i)
		mix(math.Float64bits(l.Rate))
		mix(math.Float64bits(l.Energy))
		mix(math.Float64bits(l.Time))
	}
	return h
}

// match reports whether the entry was built from exactly these inputs.
func (e *cacheEntry) match(cp model.CostParams, rt *model.RateTable) bool {
	if math.Float64bits(e.params.Re) != math.Float64bits(cp.Re) ||
		math.Float64bits(e.params.Rt) != math.Float64bits(cp.Rt) ||
		len(e.levels) != rt.Len() {
		return false
	}
	for i := range e.levels {
		l := rt.Level(i)
		if math.Float64bits(e.levels[i].Rate) != math.Float64bits(l.Rate) ||
			math.Float64bits(e.levels[i].Energy) != math.Float64bits(l.Energy) ||
			math.Float64bits(e.levels[i].Time) != math.Float64bits(l.Time) {
			return false
		}
	}
	return true
}

// Get returns the envelope for the pair, computing and caching it on
// first sight. Concurrent callers may race to compute the same
// envelope; exactly one result is published.
func (c *Cache) Get(cp model.CostParams, rt *model.RateTable) (*Envelope, error) {
	h := keyHash(cp, rt)
	if env := c.lookup(h, cp, rt); env != nil {
		c.hits.Add(1)
		return env, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check against the snapshot a concurrent miss may have
	// published while we waited for the lock.
	if env := c.lookup(h, cp, rt); env != nil {
		c.hits.Add(1)
		return env, nil
	}
	env, err := Compute(cp, rt)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	old, _ := c.cur.Load().([]cacheEntry)
	if len(old) >= c.max {
		old = nil // new epoch: wholesale, deterministic eviction
	}
	next := make([]cacheEntry, len(old), len(old)+1)
	copy(next, old)
	levels := make([]model.RateLevel, rt.Len())
	for i := range levels {
		levels[i] = rt.Level(i)
	}
	next = append(next, cacheEntry{hash: h, params: cp, levels: levels, env: env})
	c.cur.Store(next)
	return env, nil
}

// lookup scans the current snapshot; nil on miss. Allocation-free.
func (c *Cache) lookup(h uint64, cp model.CostParams, rt *model.RateTable) *Envelope {
	cur, _ := c.cur.Load().([]cacheEntry)
	for i := range cur {
		if cur[i].hash == h && cur[i].match(cp, rt) {
			return cur[i].env
		}
	}
	return nil
}

// Len returns the number of cached envelopes.
func (c *Cache) Len() int {
	cur, _ := c.cur.Load().([]cacheEntry)
	return len(cur)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
