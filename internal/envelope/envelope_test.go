package envelope

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsched/internal/model"
)

func table2() *model.RateTable {
	return model.MustRateTable([]model.RateLevel{
		{Rate: 1.6, Energy: 3.375, Time: 0.625},
		{Rate: 2.0, Energy: 4.22, Time: 0.5},
		{Rate: 2.4, Energy: 5.0, Time: 0.42},
		{Rate: 2.8, Energy: 6.0, Time: 0.36},
		{Rate: 3.0, Energy: 7.1, Time: 0.33},
	})
}

var paperParams = model.CostParams{Re: 0.1, Rt: 0.4}

func TestComputeValidatesInputs(t *testing.T) {
	if _, err := Compute(model.CostParams{}, table2()); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Compute(paperParams, &model.RateTable{}); err == nil {
		t.Error("invalid table accepted")
	}
}

func TestSingleLevel(t *testing.T) {
	rt := model.MustRateTable([]model.RateLevel{{Rate: 2, Energy: 1, Time: 0.5}})
	e := MustCompute(paperParams, rt)
	if e.NumRanges() != 1 {
		t.Fatalf("NumRanges = %d, want 1", e.NumRanges())
	}
	r := e.Range(0)
	if r.Lo != 1 || r.Hi != Unbounded || r.Level.Rate != 2 {
		t.Errorf("range = %+v", r)
	}
	if e.LevelFor(1).Rate != 2 || e.LevelFor(1_000_000).Rate != 2 {
		t.Error("LevelFor wrong for single level")
	}
}

func TestTwoLevelKnownBreakpoint(t *testing.T) {
	// Breakpoint k* = Re(E2-E1)/(Rt(T1-T2)). With Re=Rt=1, E={1,3},
	// T={2,1}: k* = 2/1 = 2, so p1 dominates k=1 and p2 dominates
	// k>=2 (tie at exactly k*=2 goes to the higher rate).
	cp := model.CostParams{Re: 1, Rt: 1}
	rt := model.MustRateTable([]model.RateLevel{
		{Rate: 1, Energy: 1, Time: 2},
		{Rate: 2, Energy: 3, Time: 1},
	})
	e := MustCompute(cp, rt)
	if e.NumRanges() != 2 {
		t.Fatalf("NumRanges = %d, want 2; envelope: %v", e.NumRanges(), e)
	}
	if r := e.Range(0); r.Lo != 1 || r.Hi != 1 || r.Level.Rate != 1 {
		t.Errorf("range 0 = %v", r)
	}
	if r := e.Range(1); r.Lo != 2 || r.Hi != Unbounded || r.Level.Rate != 2 {
		t.Errorf("range 1 = %v", r)
	}
}

func TestDominatedLevelExcluded(t *testing.T) {
	// The middle level is strictly worse than some mix of the outer
	// two at every integer position: make it barely cheaper in
	// neither dimension.
	cp := model.CostParams{Re: 1, Rt: 1}
	rt := model.MustRateTable([]model.RateLevel{
		{Rate: 1, Energy: 1, Time: 2},
		{Rate: 1.5, Energy: 2.9, Time: 1.6}, // above the hull chord
		{Rate: 2, Energy: 3, Time: 1},
	})
	e := MustCompute(cp, rt)
	for _, r := range e.Ranges() {
		if r.Level.Rate == 1.5 {
			t.Errorf("dominated level appears in envelope: %v", e)
		}
	}
}

func TestRangesPartitionPositions(t *testing.T) {
	e := MustCompute(paperParams, table2())
	rs := e.Ranges()
	if rs[0].Lo != 1 {
		t.Errorf("first range starts at %d, want 1", rs[0].Lo)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Lo != rs[i-1].Hi+1 {
			t.Errorf("gap between ranges %d and %d: %v", i-1, i, rs)
		}
		if rs[i].Level.Rate <= rs[i-1].Level.Rate {
			t.Errorf("rates not ascending across ranges: %v", rs)
		}
	}
	if rs[len(rs)-1].Hi != Unbounded {
		t.Error("last range not unbounded")
	}
}

func TestEnvelopeMatchesNaiveTable2(t *testing.T) {
	e := MustCompute(paperParams, table2())
	rt := table2()
	for k := 1; k <= 10_000; k++ {
		want, wantCost := paperParams.BestBackwardLevel(k, rt)
		got := e.LevelFor(k)
		if got.Rate != want.Rate {
			t.Fatalf("k=%d: envelope chose %v, naive chose %v", k, got.Rate, want.Rate)
		}
		if c := e.Cost(k); math.Abs(c-wantCost) > 1e-12 {
			t.Fatalf("k=%d: Cost=%v, want %v", k, c, wantCost)
		}
	}
}

func TestRangeIndexForPanicsBelowOne(t *testing.T) {
	e := MustCompute(paperParams, table2())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	e.RangeIndexFor(0)
}

func TestRangeContains(t *testing.T) {
	r := Range{Lo: 3, Hi: 7}
	for k, want := range map[int]bool{2: false, 3: true, 7: true, 8: false} {
		if r.Contains(k) != want {
			t.Errorf("Contains(%d) = %v", k, !want)
		}
	}
}

func TestStringNonEmpty(t *testing.T) {
	e := MustCompute(paperParams, table2())
	if e.String() == "" || e.Range(0).String() == "" {
		t.Error("empty String")
	}
}

// Property: for random valid tables and params, the envelope agrees
// with the naive per-position argmin on every position up to well past
// all breakpoints.
func TestEnvelopeMatchesNaiveRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		levels := make([]model.RateLevel, n)
		rate, energy := 0.5+rng.Float64(), 0.5+rng.Float64()
		for i := range levels {
			levels[i] = model.RateLevel{Rate: rate, Energy: energy, Time: 1 / rate}
			rate += 0.1 + rng.Float64()
			energy += 0.1 + rng.Float64()*3
		}
		rt := model.MustRateTable(levels)
		cp := model.CostParams{Re: 0.05 + rng.Float64(), Rt: 0.05 + rng.Float64()}
		e, err := Compute(cp, rt)
		if err != nil {
			return false
		}
		for k := 1; k <= 2000; k++ {
			want, _ := cp.BestBackwardLevel(k, rt)
			if e.LevelFor(k).Rate != want.Rate {
				t.Logf("seed %d k=%d: envelope %v naive %v (%v)", seed, k, e.LevelFor(k).Rate, want.Rate, e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
