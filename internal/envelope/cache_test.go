package envelope

import (
	"sync"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func TestCacheReturnsSharedInstance(t *testing.T) {
	c := NewCache(8)
	params := model.CostParams{Re: 0.1, Rt: 0.4}

	// Platform presets build a fresh *RateTable per call, so a hit here
	// proves the cache keys on content, not pointer identity.
	first, err := c.Get(params, platform.TableII())
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Get(params, platform.TableII())
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("content-identical inputs returned distinct envelopes")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}

	want := MustCompute(params, platform.TableII())
	if first.String() != want.String() {
		t.Fatalf("cached envelope differs from direct Compute:\n  got  %v\n  want %v", first, want)
	}
}

func TestCacheDistinguishesParamsAndTables(t *testing.T) {
	c := NewCache(8)
	a, err := c.Get(model.CostParams{Re: 0.1, Rt: 0.4}, platform.TableII())
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(model.CostParams{Re: 0.2, Rt: 0.4}, platform.TableII())
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Get(model.CostParams{Re: 0.1, Rt: 0.4}, platform.IntelI7950())
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == d {
		t.Fatal("distinct inputs were unified")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestCacheEpochEviction(t *testing.T) {
	c := NewCache(2)
	tables := []*model.RateTable{platform.TableII(), platform.IntelI7950(), platform.ExynosT4412()}
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	for _, rt := range tables {
		if _, err := c.Get(params, rt); err != nil {
			t.Fatal(err)
		}
	}
	// The third miss found the cache at capacity and started a new
	// epoch holding only itself.
	if c.Len() != 1 {
		t.Fatalf("Len after epoch turnover = %d, want 1", c.Len())
	}
	// The evicted first entry is recomputed on demand.
	if _, err := c.Get(params, platform.TableII()); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
}

// TestCacheHitPathAllocs is the PR's allocation guard: a cache hit
// must not allocate, or the memoization would leak garbage into the
// per-arrival hot path it exists to clean up.
func TestCacheHitPathAllocs(t *testing.T) {
	c := NewCache(8)
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	rt := platform.TableII()
	if _, err := c.Get(params, rt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Get(params, rt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocated %.1f objects per run, want 0", allocs)
	}
}

// TestCacheConcurrentGet hammers one cache from many goroutines; under
// -race this is the RCU snapshot's safety proof.
func TestCacheConcurrentGet(t *testing.T) {
	c := NewCache(8)
	paramSets := []model.CostParams{
		{Re: 0.1, Rt: 0.4},
		{Re: 0.2, Rt: 0.4},
		{Re: 0.1, Rt: 0.8},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := paramSets[(g+i)%len(paramSets)]
				env, err := c.Get(p, platform.TableII())
				if err != nil || env == nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != len(paramSets) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(paramSets))
	}
}
