package envelope_test

import (
	"fmt"

	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// Compute the dominating position ranges of the paper's Table II
// platform: which frequency is cheapest for a task as a function of
// its backward position (how much work runs after it).
func ExampleCompute() {
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	env, err := envelope.Compute(params, platform.TableII())
	if err != nil {
		panic(err)
	}
	fmt.Println(env)
	fmt.Printf("a task with 11 tasks behind it runs at %.1f GHz\n", env.LevelFor(12).Rate)
	// Output:
	// [1, 1] -> 1.6 GHz, [2, 2] -> 2 GHz, [3, 4] -> 2.4 GHz, [5, 9] -> 2.8 GHz, [10, inf) -> 3 GHz
	// a task with 11 tasks behind it runs at 3.0 GHz
}
