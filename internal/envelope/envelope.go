// Package envelope implements Algorithm 1 of the paper: computing the
// dominating position ranges D_p for every processing rate p in Θ(|P|).
//
// For backward position k (k = 1 is the last task to execute on a
// core), the per-cycle cost of rate p_i is the line
//
//	f_i(k) = C^B(k, p_i) = Re*E(p_i) + Rt*T(p_i)*k.
//
// The best rate for position k is the lower envelope of these lines.
// Because each line corresponds to the dual point
// (x, y) = (Rt*T(p_i), Re*E(p_i)) with x strictly decreasing and y
// strictly increasing in i, the envelope is a lower convex hull and
// each rate that appears on it dominates one consecutive range of
// positions ("dominating position range"). Ties at a breakpoint go to
// the higher rate, as the paper specifies.
package envelope

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dvfsched/internal/model"
)

// Unbounded is the Hi value of the last range, which extends to
// infinity.
const Unbounded = math.MaxInt

// Range is one dominating position range: level is the best (cheapest
// per-cycle) rate for every backward position k in [Lo, Hi].
type Range struct {
	// Level is the dominating rate level.
	Level model.RateLevel
	// LevelIndex is the level's index in the source RateTable.
	LevelIndex int
	// Lo is the first backward position dominated (inclusive, >= 1).
	Lo int
	// Hi is the last backward position dominated (inclusive);
	// Unbounded for the final range.
	Hi int
}

// Contains reports whether backward position k falls in the range.
func (r Range) Contains(k int) bool { return k >= r.Lo && k <= r.Hi }

func (r Range) String() string {
	if r.Hi == Unbounded {
		return fmt.Sprintf("[%d, inf) -> %.3g GHz", r.Lo, r.Level.Rate)
	}
	return fmt.Sprintf("[%d, %d] -> %.3g GHz", r.Lo, r.Hi, r.Level.Rate)
}

// Envelope holds the dominating position ranges for one (RateTable,
// CostParams) pair. It is immutable after Compute and safe for
// concurrent readers.
type Envelope struct {
	params model.CostParams
	ranges []Range
}

type hullPoint struct {
	levelIndex int
	x, y       float64 // x = Rt*T(p), y = Re*E(p)
}

func cross(t0, t1, t2 hullPoint) float64 {
	return (t1.x-t0.x)*(t2.y-t0.y) - (t2.x-t0.x)*(t1.y-t0.y)
}

// Compute runs Algorithm 1. It is Θ(|P|): one monotone-hull pass over
// the levels plus one pass emitting breakpoints.
func Compute(cp model.CostParams, rt *model.RateTable) (*Envelope, error) {
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	if err := rt.Validate(); err != nil {
		return nil, err
	}

	// Lower hull of the dual points, scanned in ascending rate order
	// (x strictly decreasing, y strictly increasing).
	stack := make([]hullPoint, 0, rt.Len())
	for i := 0; i < rt.Len(); i++ {
		l := rt.Level(i)
		t := hullPoint{levelIndex: i, x: cp.Rt * l.Time, y: cp.Re * l.Energy}
		for len(stack) >= 2 && cross(stack[len(stack)-2], stack[len(stack)-1], t) >= 0 {
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, t)
	}

	// Emit ranges between consecutive hull breakpoints. The
	// breakpoint between hull lines i and i+1 is
	// k* = (y[i+1]-y[i]) / (x[i]-x[i+1]); line i dominates k < k*,
	// line i+1 dominates k >= k* (tie at integer k* goes to the
	// faster line i+1 thanks to the ceiling).
	var ranges []Range
	lb := 1
	for i := 0; i+1 < len(stack); i++ {
		nlb := int(math.Ceil((stack[i+1].y - stack[i].y) / (stack[i].x - stack[i+1].x)))
		if nlb > lb {
			ranges = append(ranges, Range{
				Level:      rt.Level(stack[i].levelIndex),
				LevelIndex: stack[i].levelIndex,
				Lo:         lb,
				Hi:         nlb - 1,
			})
			lb = nlb
		}
		// If nlb <= lb this hull line dominates no integer
		// position at or after lb; it contributes no range
		// (D_p = empty, p not in P-hat).
	}
	last := stack[len(stack)-1]
	ranges = append(ranges, Range{
		Level:      rt.Level(last.levelIndex),
		LevelIndex: last.levelIndex,
		Lo:         lb,
		Hi:         Unbounded,
	})
	return &Envelope{params: cp, ranges: ranges}, nil
}

// MustCompute is Compute that panics on error, for use with
// already-validated presets.
func MustCompute(cp model.CostParams, rt *model.RateTable) *Envelope {
	e, err := Compute(cp, rt)
	if err != nil {
		panic(err)
	}
	return e
}

// Params returns the cost parameters the envelope was built with.
func (e *Envelope) Params() model.CostParams { return e.params }

// NumRanges returns |P-hat|, the number of rates with a non-empty
// dominating range.
func (e *Envelope) NumRanges() int { return len(e.ranges) }

// Ranges returns a copy of the dominating position ranges in ascending
// position (and therefore ascending rate) order.
func (e *Envelope) Ranges() []Range {
	out := make([]Range, len(e.ranges))
	copy(out, e.ranges)
	return out
}

// Range returns the i-th range (0-indexed, ascending positions).
func (e *Envelope) Range(i int) Range { return e.ranges[i] }

// RangeIndexFor returns the index of the range containing backward
// position k, in O(log |P-hat|). k must be >= 1.
func (e *Envelope) RangeIndexFor(k int) int {
	if k < 1 {
		panic(fmt.Sprintf("envelope: backward position %d < 1", k))
	}
	// The first range with Lo > k is the successor; we want its
	// predecessor.
	i := sort.Search(len(e.ranges), func(i int) bool { return e.ranges[i].Lo > k })
	return i - 1
}

// LevelFor returns the cost-optimal rate level for backward position k.
func (e *Envelope) LevelFor(k int) model.RateLevel {
	return e.ranges[e.RangeIndexFor(k)].Level
}

// Cost returns C^B(k) = min over p of C^B(k, p), evaluated via the
// dominating range.
func (e *Envelope) Cost(k int) float64 {
	return e.params.BackwardPositionCost(k, e.LevelFor(k))
}

func (e *Envelope) String() string {
	parts := make([]string, len(e.ranges))
	for i, r := range e.ranges {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}
