package obs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// This file is the compact binary form of the event stream — the
// storage and replication format the JSONL encoding is too fat for at
// production event rates. The layout trades generality for exactness
// and speed:
//
//	stream  = magic version frame*
//	magic   = "DVFB" (4 bytes)
//	version = 1 byte (currently 1; readers accept any version <= theirs)
//	frame   = payloadLen:u32le crc:u32le payload
//	payload = record*                       (crc = CRC-32/IEEE of payload)
//
// Each frame is fully self-contained: the kind-interning dictionary,
// the delta baselines and the per-field XOR predictors all reset at
// frame boundaries, so a reader can skip a damaged frame and keep
// decoding, and frames can be decoded independently (the shape a
// replicated log needs). One record is:
//
//	kindIdx:uvarint [kindLen:uvarint kindBytes]   (bytes present iff
//	                                               kindIdx == dict size:
//	                                               inline interning)
//	flags:1 byte      bit0 Rate, bit1 PrevRate, bit2 Eff, bit3 Cycles,
//	                  bit4 Remaining, bit5 Energy, bit6 Interactive
//	seqDelta:uvarint  Seq minus the frame's previous Seq (wrapping)
//	tBits:uvarint     Float64bits(T) XOR the previous record's T bits
//	core:varint task:varint
//	field:uvarint     for each flag bit 0..5 set, in that order:
//	                  Float64bits(v) XOR that field's previous bits
//
// Every float travels as exact IEEE-754 bits (XOR prediction, never
// subtraction), so decode is the exact inverse of encode: NaN, ±Inf
// and subnormals round-trip, and re-encoding a decoded stream with the
// same frame boundaries reproduces the input byte for byte. A field
// equal to 0 is omitted (flag clear), mirroring AppendJSON's omitempty
// semantics — note -0 compares equal to 0 and is therefore normalized
// to +0 by a round trip, exactly as the JSONL path drops it.
const (
	// binaryVersion is the current wire version. Bump only for layout
	// changes; readers keep decoding every older version forever (the
	// golden-file tests pin version 1).
	binaryVersion = 1

	// binaryHeaderLen is the stream header: magic plus version byte.
	binaryHeaderLen = 5

	// binaryFrameTarget is the payload size at which the encoder seals
	// a frame. Small enough to bound the blast radius of a corrupt
	// frame, large enough that the 8-byte frame header is noise.
	binaryFrameTarget = 32 << 10

	// maxFramePayload bounds a frame a reader will buffer; beyond it
	// the length field itself is presumed corrupt and resynchronization
	// is impossible.
	maxFramePayload = 1 << 26
)

// binaryMagic starts every binary trace stream.
var binaryMagic = [4]byte{'D', 'V', 'F', 'B'}

// BinaryMagic returns the 4 magic bytes that start every binary trace
// stream, for format sniffing (cmd/traceinfo peeks at these).
func BinaryMagic() []byte { return append([]byte(nil), binaryMagic[:]...) }

// DetectBinary reports whether prefix begins a binary trace stream.
// Callers peek at least BinaryMagicLen bytes; shorter prefixes report
// false.
func DetectBinary(prefix []byte) bool {
	return len(prefix) >= len(binaryMagic) &&
		prefix[0] == binaryMagic[0] && prefix[1] == binaryMagic[1] &&
		prefix[2] == binaryMagic[2] && prefix[3] == binaryMagic[3]
}

// Typed binary-format errors, matchable via errors.Is.
var (
	// ErrBadMagic is returned when a stream does not start with the
	// binary trace magic.
	ErrBadMagic = errors.New("obs: not a binary trace (bad magic)")
	// ErrBadVersion is returned for stream versions newer than this
	// reader understands.
	ErrBadVersion = errors.New("obs: unsupported binary trace version")
	// ErrFrameChecksum marks a frame whose payload fails its CRC.
	ErrFrameChecksum = errors.New("obs: frame checksum mismatch")
	// ErrFrameTruncated marks a frame cut off mid-header or mid-payload.
	ErrFrameTruncated = errors.New("obs: truncated frame")
	// ErrFrameCorrupt marks a CRC-valid frame whose records do not
	// parse (an encoder bug or a deliberate corruption that kept the
	// CRC consistent).
	ErrFrameCorrupt = errors.New("obs: malformed frame payload")
	// ErrFrameTooLarge marks a frame whose declared payload length
	// exceeds the reader's bound; the stream cannot be resynchronized.
	ErrFrameTooLarge = errors.New("obs: frame length exceeds limit")
)

// FrameError reports one damaged frame. A *FrameError always means the
// reader has moved past the damage: the next call continues with the
// following frame (or io.EOF after a truncated tail), so a recovery
// loop can treat every FrameError as "count the loss and keep reading".
// Unrecoverable states (ErrFrameTooLarge, where the length field
// itself is untrusted) surface as plain sticky errors instead.
type FrameError struct {
	// Frame is the 0-based index of the damaged frame in the stream.
	Frame int
	// Offset is the byte offset of the frame's header.
	Offset int64
	// Err classifies the damage (ErrFrameChecksum, ErrFrameTruncated,
	// ErrFrameCorrupt, ErrFrameTooLarge).
	Err error
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("obs: frame %d at offset %d: %v", e.Frame, e.Offset, e.Err)
}

// Unwrap exposes the classification sentinel.
func (e *FrameError) Unwrap() error { return e.Err }

// optional-field order shared by encoder and decoder: flag bit i
// corresponds to optFields index i.
const numOptFields = 6

// BinaryEncoder appends events in the binary trace format. It is the
// append-style twin of Event.AppendJSON: the caller owns the
// destination slice, the encoder owns only its frame scratch, and a
// steady-state append allocates nothing. Not safe for concurrent use;
// wrap it in BinaryWriter for a locked io.Writer sink.
//
// Call Flush after the last event to seal the trailing partial frame —
// an unflushed encoder has buffered, unframed bytes.
type BinaryEncoder struct {
	frame   []byte
	dict    []string
	prevSeq uint64
	prevT   uint64
	prevF   [numOptFields]uint64
	started bool
}

// resetFrame clears the per-frame prediction state.
func (e *BinaryEncoder) resetFrame() {
	e.frame = e.frame[:0]
	e.dict = e.dict[:0]
	e.prevSeq, e.prevT = 0, 0
	e.prevF = [numOptFields]uint64{}
}

// Reset returns the encoder to the empty-stream state, keeping its
// buffers for reuse.
func (e *BinaryEncoder) Reset() {
	e.resetFrame()
	e.started = false
}

// header appends the stream header once per encoder lifetime.
func (e *BinaryEncoder) header(dst []byte) []byte {
	if e.started {
		return dst
	}
	e.started = true
	dst = append(dst, binaryMagic[:]...)
	return append(dst, binaryVersion)
}

// seal frames the buffered payload onto dst: length, CRC, bytes.
func (e *BinaryEncoder) seal(dst []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(e.frame)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(e.frame))
	dst = append(dst, hdr[:]...)
	dst = append(dst, e.frame...)
	e.resetFrame()
	return dst
}

// AppendEvent encodes ev, appending any completed output (the stream
// header on first use, a sealed frame when the buffer reaches its
// target) to dst, and returns the extended slice. Bytes for the event
// itself may stay buffered until a later AppendEvent or Flush seals
// the frame.
func (e *BinaryEncoder) AppendEvent(dst []byte, ev Event) []byte {
	dst = e.header(dst)
	e.appendRecord(ev)
	if len(e.frame) >= binaryFrameTarget {
		dst = e.seal(dst)
	}
	return dst
}

// Flush seals the pending partial frame (and emits the stream header
// if no event was ever appended, so even an empty trace identifies its
// format) and returns the extended slice.
func (e *BinaryEncoder) Flush(dst []byte) []byte {
	dst = e.header(dst)
	if len(e.frame) > 0 {
		dst = e.seal(dst)
	}
	return dst
}

// appendRecord encodes one event into the frame buffer.
func (e *BinaryEncoder) appendRecord(ev Event) {
	b := e.frame
	// Inline kind interning: an index equal to the dictionary size
	// introduces the string it is about to mean.
	kind := string(ev.Kind)
	idx := -1
	for i, s := range e.dict {
		if s == kind {
			idx = i
			break
		}
	}
	if idx < 0 {
		b = binary.AppendUvarint(b, uint64(len(e.dict)))
		b = binary.AppendUvarint(b, uint64(len(kind)))
		b = append(b, kind...)
		e.dict = append(e.dict, kind)
	} else {
		b = binary.AppendUvarint(b, uint64(idx))
	}

	var flags byte
	opt := [numOptFields]float64{ev.Rate, ev.PrevRate, ev.Eff, ev.Cycles, ev.Remaining, ev.Energy}
	for i, v := range opt {
		if v != 0 {
			flags |= 1 << i
		}
	}
	if ev.Interactive {
		flags |= 1 << 6
	}
	b = append(b, flags)

	b = binary.AppendUvarint(b, ev.Seq-e.prevSeq)
	e.prevSeq = ev.Seq
	tb := math.Float64bits(ev.T)
	b = binary.AppendUvarint(b, tb^e.prevT)
	e.prevT = tb
	b = binary.AppendVarint(b, int64(ev.Core))
	b = binary.AppendVarint(b, int64(ev.Task))
	for i, v := range opt {
		if flags&(1<<i) == 0 {
			continue
		}
		fb := math.Float64bits(v)
		b = binary.AppendUvarint(b, fb^e.prevF[i])
		e.prevF[i] = fb
	}
	e.frame = b
}

// BinaryWriter is a Sink that streams events in the binary trace
// format. Like JSONLWriter, errors are sticky: the first write failure
// is retained and reported by Close (and Err), and later events are
// dropped. Close (or Flush) seals the trailing frame; an unclosed
// writer loses buffered events.
type BinaryWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     BinaryEncoder
	scratch []byte
	err     error
}

// NewBinaryWriter wraps w in a buffered binary-trace event sink. Call
// Close (or Flush) before reading the destination.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (b *BinaryWriter) Emit(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return
	}
	b.scratch = b.enc.AppendEvent(b.scratch[:0], ev)
	if len(b.scratch) == 0 {
		return
	}
	if _, err := b.bw.Write(b.scratch); err != nil {
		b.err = fmt.Errorf("obs: write event %d: %w", ev.Seq, err)
	}
}

// Flush seals the pending frame and drains the buffer to the
// underlying writer. The stream stays appendable: later events open a
// new frame.
func (b *BinaryWriter) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	b.scratch = b.enc.Flush(b.scratch[:0])
	if len(b.scratch) > 0 {
		if _, err := b.bw.Write(b.scratch); err != nil {
			b.err = fmt.Errorf("obs: flush: %w", err)
			return b.err
		}
	}
	if err := b.bw.Flush(); err != nil {
		b.err = fmt.Errorf("obs: flush: %w", err)
	}
	return b.err
}

// Close flushes and returns the first error encountered, if any. It
// does not close the underlying writer.
func (b *BinaryWriter) Close() error { return b.Flush() }

// Err returns the sticky error, if any.
func (b *BinaryWriter) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// BinaryReader decodes a binary trace stream one event at a time.
// Damaged frames surface as *FrameError and are skipped: the next call
// to Next continues with the following frame. Terminal conditions
// (clean end of stream, unrecoverable corruption) are sticky.
type BinaryReader struct {
	r        *bufio.Reader
	frame    []byte
	pos      int
	dict     []string
	prevSeq  uint64
	prevT    uint64
	prevF    [numOptFields]uint64
	started  bool
	frameIdx int
	off      int64
	sticky   error
}

// NewBinaryReader wraps r for streaming decode.
func NewBinaryReader(r io.Reader) *BinaryReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &BinaryReader{r: br}
	}
	return &BinaryReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Reset rearms the reader to decode a fresh stream from src, reusing
// the frame buffer, dictionary capacity, and (when src is not itself
// a *bufio.Reader) the buffered layer of the previous stream. It lets
// hot decode paths keep one BinaryReader per worker instead of
// allocating reader + 64 KiB buffer per trace.
func (r *BinaryReader) Reset(src io.Reader) {
	if br, ok := src.(*bufio.Reader); ok {
		r.r = br
	} else if r.r != nil {
		r.r.Reset(src)
	} else {
		r.r = bufio.NewReaderSize(src, 64<<10)
	}
	r.frame = r.frame[:0]
	r.pos = 0
	r.dict = r.dict[:0]
	r.prevSeq, r.prevT = 0, 0
	r.prevF = [numOptFields]uint64{}
	r.started = false
	r.frameIdx = 0
	r.off = 0
	r.sticky = nil
}

// Next returns the next decoded event. It returns io.EOF at a clean
// end of stream, a *FrameError for each damaged frame it skipped (call
// again to keep reading), and other errors for unrecoverable states.
func (r *BinaryReader) Next() (Event, error) {
	if r.sticky != nil {
		return Event{}, r.sticky
	}
	if !r.started {
		if err := r.readHeader(); err != nil {
			r.sticky = err
			return Event{}, err
		}
		r.started = true
	}
	for r.pos >= len(r.frame) {
		if err := r.loadFrame(); err != nil {
			return Event{}, err
		}
	}
	ev, err := r.decodeRecord()
	if err != nil {
		// A CRC-valid frame that does not parse: drop its remainder.
		ferr := &FrameError{Frame: r.frameIdx - 1, Offset: r.off - int64(len(r.frame)) - 8, Err: ErrFrameCorrupt}
		r.frame = r.frame[:0]
		r.pos = 0
		return Event{}, ferr
	}
	return ev, nil
}

// readHeader consumes and validates the stream magic and version.
func (r *BinaryReader) readHeader() error {
	var hdr [binaryHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrBadMagic
		}
		return err
	}
	r.off += binaryHeaderLen
	if !DetectBinary(hdr[:4]) {
		return ErrBadMagic
	}
	if v := hdr[4]; v == 0 || v > binaryVersion {
		return fmt.Errorf("%w: %d (reader supports <= %d)", ErrBadVersion, hdr[4], binaryVersion)
	}
	return nil
}

// loadFrame reads and verifies the next frame into r.frame. On CRC
// mismatch the frame is skipped and a *FrameError returned; the caller
// may call Next again.
func (r *BinaryReader) loadFrame() error {
	frameOff := r.off
	var hdr [8]byte
	n, err := io.ReadFull(r.r, hdr[:])
	if err != nil {
		if errors.Is(err, io.EOF) && n == 0 {
			r.sticky = io.EOF
			return io.EOF
		}
		// A partial header is a truncated tail; nothing follows it.
		r.sticky = io.EOF
		return &FrameError{Frame: r.frameIdx, Offset: frameOff, Err: ErrFrameTruncated}
	}
	r.off += 8
	length := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxFramePayload {
		// Deliberately NOT a *FrameError: the length field itself is
		// untrustworthy, so the stream cannot be resynchronized and a
		// skip-and-continue loop must stop here, not spin on it.
		err := fmt.Errorf("obs: frame %d at offset %d (declared %d bytes): %w",
			r.frameIdx, frameOff, length, ErrFrameTooLarge)
		r.sticky = err
		return err
	}
	if cap(r.frame) < int(length) {
		r.frame = make([]byte, length)
	}
	r.frame = r.frame[:length]
	if _, err := io.ReadFull(r.r, r.frame); err != nil {
		r.frame = r.frame[:0]
		r.pos = 0
		r.sticky = io.EOF
		return &FrameError{Frame: r.frameIdx, Offset: frameOff, Err: ErrFrameTruncated}
	}
	r.off += int64(length)
	r.frameIdx++
	if crc32.ChecksumIEEE(r.frame) != wantCRC {
		r.frame = r.frame[:0]
		r.pos = 0
		return &FrameError{Frame: r.frameIdx - 1, Offset: frameOff, Err: ErrFrameChecksum}
	}
	// Fresh frame: reset the prediction state.
	r.pos = 0
	r.dict = r.dict[:0]
	r.prevSeq, r.prevT = 0, 0
	r.prevF = [numOptFields]uint64{}
	return nil
}

// uvarint decodes one uvarint at the cursor.
func (r *BinaryReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.frame[r.pos:])
	if n <= 0 {
		return 0, ErrFrameCorrupt
	}
	r.pos += n
	return v, nil
}

// varint decodes one zigzag varint at the cursor.
func (r *BinaryReader) varint() (int64, error) {
	v, n := binary.Varint(r.frame[r.pos:])
	if n <= 0 {
		return 0, ErrFrameCorrupt
	}
	r.pos += n
	return v, nil
}

// decodeRecord parses one event at the cursor.
func (r *BinaryReader) decodeRecord() (Event, error) {
	var ev Event
	kindIdx, err := r.uvarint()
	if err != nil {
		return ev, err
	}
	switch {
	case kindIdx < uint64(len(r.dict)):
		ev.Kind = Kind(r.dict[kindIdx])
	case kindIdx == uint64(len(r.dict)):
		n, err := r.uvarint()
		if err != nil {
			return ev, err
		}
		if n > uint64(len(r.frame)-r.pos) {
			return ev, ErrFrameCorrupt
		}
		s := string(r.frame[r.pos : r.pos+int(n)])
		r.pos += int(n)
		r.dict = append(r.dict, s)
		ev.Kind = Kind(s)
	default:
		return ev, ErrFrameCorrupt
	}
	if r.pos >= len(r.frame) {
		return ev, ErrFrameCorrupt
	}
	flags := r.frame[r.pos]
	r.pos++
	if flags&(1<<7) != 0 {
		return ev, ErrFrameCorrupt
	}

	d, err := r.uvarint()
	if err != nil {
		return ev, err
	}
	r.prevSeq += d
	ev.Seq = r.prevSeq
	tx, err := r.uvarint()
	if err != nil {
		return ev, err
	}
	r.prevT ^= tx
	ev.T = math.Float64frombits(r.prevT)
	core, err := r.varint()
	if err != nil {
		return ev, err
	}
	task, err := r.varint()
	if err != nil {
		return ev, err
	}
	ev.Core, ev.Task = int(core), int(task)
	var opt [numOptFields]float64
	for i := 0; i < numOptFields; i++ {
		if flags&(1<<i) == 0 {
			continue
		}
		fx, err := r.uvarint()
		if err != nil {
			return ev, err
		}
		r.prevF[i] ^= fx
		opt[i] = math.Float64frombits(r.prevF[i])
	}
	ev.Rate, ev.PrevRate, ev.Eff, ev.Cycles, ev.Remaining, ev.Energy =
		opt[0], opt[1], opt[2], opt[3], opt[4], opt[5]
	ev.Interactive = flags&(1<<6) != 0
	return ev, nil
}

// ReadBinary decodes a complete binary trace strictly: any damaged
// frame fails the read. Use BinaryReader directly to tolerate damage.
func ReadBinary(r io.Reader) ([]Event, error) {
	br := NewBinaryReader(r)
	var events []Event
	for {
		ev, err := br.Next()
		if errors.Is(err, io.EOF) {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
}

// AppendBinary encodes events as one complete binary trace (header,
// frames, sealed tail) appended to b. It is the one-shot form of
// BinaryEncoder for whole in-memory traces.
func AppendBinary(b []byte, events []Event) []byte {
	var enc BinaryEncoder
	for _, ev := range events {
		b = enc.AppendEvent(b, ev)
	}
	return enc.Flush(b)
}

// ReadEvents reads an event trace in either format, sniffing the
// binary magic: binary streams decode strictly via ReadBinary,
// anything else parses as the JSONL event format.
func ReadEvents(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	prefix, err := br.Peek(len(binaryMagic))
	if err != nil && len(prefix) == 0 && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("obs: read: %w", err)
	}
	if DetectBinary(prefix) {
		return ReadBinary(br)
	}
	return ReadJSONL(br)
}
