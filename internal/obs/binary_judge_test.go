// Judge-trace codec battery. This file is in the external test package
// so it can drive the simulator over a real workload — internal/sim
// imports internal/obs, so these tests cannot live in package obs
// itself. Everything here runs the same scaled judge configuration as
// BenchmarkLMCJudgeTrace: it is the trace the acceptance criteria are
// stated against.
package obs_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

var (
	judgeOnce   sync.Once
	judgeEvents []obs.Event
	judgeErr    error
)

// judgeTrace runs the scaled judge workload through the LMC policy on
// four cores once per test binary and returns the recorded event
// stream (~tens of thousands of events, enough for several frames).
func judgeTrace(tb testing.TB) []obs.Event {
	tb.Helper()
	judgeOnce.Do(func() {
		judge := workload.DefaultJudgeConfig()
		judge.Interactive, judge.NonInteractive, judge.Duration = 600, 90, 150
		tasks, err := judge.Generate(rand.New(rand.NewSource(1)))
		if err != nil {
			judgeErr = err
			return
		}
		params := model.CostParams{Re: 0.1, Rt: 0.4}
		lmc, err := online.NewLMC(params)
		if err != nil {
			judgeErr = err
			return
		}
		rec := &obs.Recorder{}
		plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})
		if _, err := sim.Run(sim.Config{Platform: plat, Policy: lmc, Sink: rec}, tasks, params); err != nil {
			judgeErr = err
			return
		}
		judgeEvents = rec.Events()
	})
	if judgeErr != nil {
		tb.Fatal(judgeErr)
	}
	return judgeEvents
}

// appendJSONL renders events exactly as JSONLWriter streams them.
func appendJSONL(b []byte, events []obs.Event) []byte {
	for _, ev := range events {
		b = ev.AppendJSON(b)
		b = append(b, '\n')
	}
	return b
}

// TestBinaryJudgeParity is the acceptance-criteria parity check:
// encoding the Judge trace to binary, decoding it, and re-rendering
// JSONL must reproduce the direct JSONL stream byte for byte — the
// binary path loses nothing the JSON path would have kept.
func TestBinaryJudgeParity(t *testing.T) {
	events := judgeTrace(t)
	jsonl := appendJSONL(nil, events)
	bin := obs.AppendBinary(nil, events)

	decoded, err := obs.ReadBinary(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	if !bytes.Equal(appendJSONL(nil, decoded), jsonl) {
		t.Fatal("binary -> decode -> AppendJSON differs from the direct JSONL stream")
	}
	// And the binary form itself is a fixed point.
	if !bytes.Equal(obs.AppendBinary(nil, decoded), bin) {
		t.Fatal("re-encode of decoded Judge trace is not byte-identical")
	}
}

// TestBinaryJudgeCompression pins the acceptance criterion that the
// binary encoding of the Judge trace is at least 3x smaller than
// JSONL.
func TestBinaryJudgeCompression(t *testing.T) {
	events := judgeTrace(t)
	jsonl := len(appendJSONL(nil, events))
	bin := len(obs.AppendBinary(nil, events))
	t.Logf("judge trace: %d events, jsonl %d B, binary %d B, ratio %.2fx",
		len(events), jsonl, bin, float64(jsonl)/float64(bin))
	if bin*3 > jsonl {
		t.Errorf("binary = %d B, jsonl = %d B: ratio %.2fx < required 3x",
			bin, jsonl, float64(jsonl)/float64(bin))
	}
}

// FuzzBinaryRoundTrip feeds arbitrary bytes to the tolerant reader
// (which must never panic, whatever the input), then pushes every
// event it salvages back through AppendBinary and requires the
// encode/decode/re-encode cycle to be a byte-identical fixed point.
// The seed corpus is the real Judge trace — intact, bit-flipped, and
// truncated — plus small hand-built streams.
func FuzzBinaryRoundTrip(f *testing.F) {
	events := judgeTrace(f)
	judgeBin := obs.AppendBinary(nil, events)
	f.Add(judgeBin[:min(len(judgeBin), 64<<10)]) // first frames of the Judge trace
	tail := judgeBin[max(0, len(judgeBin)-8<<10):]
	f.Add(append([]byte(nil), tail...)) // raw mid-stream suffix (no header)
	flipped := append([]byte(nil), judgeBin[:min(len(judgeBin), 16<<10)]...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add(judgeBin[:min(len(judgeBin), 16<<10)-7]) // truncated mid-frame
	f.Add(obs.AppendBinary(nil, []obs.Event{
		{Seq: 1, T: 1, Kind: obs.KindArrival, Core: -1, Task: 1, Cycles: 2, Interactive: true},
		{Seq: 2, T: 1.5, Kind: obs.KindStart, Core: 0, Task: 1, Rate: 2.4},
	}))
	f.Add([]byte{})
	f.Add([]byte("DVFB\x01"))
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Tolerant pass: salvage whatever frames survive. Must not
		// panic and must terminate.
		r := obs.NewBinaryReader(bytes.NewReader(data))
		var salvaged []obs.Event
		for {
			ev, err := r.Next()
			if err == nil {
				salvaged = append(salvaged, ev)
				continue
			}
			var ferr *obs.FrameError
			if errors.As(err, &ferr) {
				continue // skip damaged frame, keep reading
			}
			break // EOF, bad magic/version, or unrecoverable
		}
		// Whatever was salvaged must encode to a stable fixed point.
		enc1 := obs.AppendBinary(nil, salvaged)
		dec, err := obs.ReadBinary(bytes.NewReader(enc1))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(dec) != len(salvaged) {
			t.Fatalf("decoded %d events, encoded %d", len(dec), len(salvaged))
		}
		if enc2 := obs.AppendBinary(nil, dec); !bytes.Equal(enc1, enc2) {
			t.Fatal("re-encode is not byte-identical")
		}
	})
}

// BenchmarkBinaryEncodeJudge and BenchmarkJSONLEncodeJudge are the
// "measurably faster" acceptance pair: both render the full Judge
// trace into a pre-grown buffer.
func BenchmarkBinaryEncodeJudge(b *testing.B) {
	events := judgeTrace(b)
	buf := obs.AppendBinary(nil, events)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = obs.AppendBinary(buf[:0], events)
	}
	_ = buf
}

func BenchmarkJSONLEncodeJudge(b *testing.B) {
	events := judgeTrace(b)
	buf := appendJSONL(nil, events)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendJSONL(buf[:0], events)
	}
	_ = buf
}

func BenchmarkBinaryDecodeJudge(b *testing.B) {
	events := judgeTrace(b)
	enc := obs.AppendBinary(nil, events)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := obs.NewBinaryReader(bytes.NewReader(enc))
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
		}
	}
}
