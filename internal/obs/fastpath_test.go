package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// appendCorpus exercises every branch of the appender: omitempty
// combinations, negative sentinels, string escaping (quotes,
// backslashes, control bytes, HTML-sensitive <>&, U+2028/U+2029,
// invalid UTF-8), and the float-format cutoffs around 1e-6 and 1e21.
var appendCorpus = []Event{
	{},
	{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 7, Cycles: 12.5, Interactive: true},
	{Seq: 2, T: 0.001, Kind: KindStart, Core: 0, Task: 7, Rate: 3, Eff: 0.0015, Remaining: 12.5},
	{Seq: 3, T: 1.25, Kind: KindDVFS, Core: 3, Task: -1, PrevRate: 3, Rate: 1.6},
	{Seq: 4, T: 4.125, Kind: KindComplete, Core: 0, Task: 7, Energy: 88.75},
	{Seq: 18446744073709551615, T: -1.5, Kind: "weird \"kind\"\\", Core: -42, Task: 1 << 40},
	{Kind: "html <b>&amp;</b>"},
	{Kind: "ctrl\x00\x01\x1f tab\t nl\n cr\r"},
	{Kind: "unicode é 世界 \u2028\u2029"},
	{Kind: "bad utf8 \xff\xfe end"},
	{T: 1e-7, Rate: -1e-7, Eff: 1e-6, Cycles: 9.999999e-7},
	{T: 1e21, Rate: -1e21, Eff: 9.99e20, Cycles: 1.2345e25},
	{T: 1e-300, Rate: 1e300, Eff: math.MaxFloat64, Cycles: math.SmallestNonzeroFloat64},
	{T: 0.1, Rate: 1.0 / 3.0, Eff: 2.718281828459045, Cycles: 6.02214076e23},
}

func TestEventAppendJSONMatchesMarshal(t *testing.T) {
	for _, ev := range appendCorpus {
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("marshal %+v: %v", ev, err)
		}
		got := ev.AppendJSON(nil)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendJSON mismatch for %+v:\n got %s\nwant %s", ev, got, want)
		}
	}
}

func TestEventAppendJSONMatchesMarshalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5)) // deterministic corpus, not randomness
	randFloat := func() float64 {
		// Span subnormal through huge magnitudes to cross both format cutoffs.
		v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(50)-25))
		if rng.Intn(2) == 0 {
			v = -v
		}
		if rng.Intn(8) == 0 {
			v = 0
		}
		return v
	}
	kinds := []Kind{KindArrival, KindStart, KindPreempt, KindComplete, KindDVFS, KindCoreActive, KindCoreIdle}
	for i := 0; i < 2000; i++ {
		ev := Event{
			Seq:         rng.Uint64(),
			T:           randFloat(),
			Kind:        kinds[rng.Intn(len(kinds))],
			Core:        rng.Intn(64) - 1,
			Task:        rng.Intn(1 << 20),
			Rate:        randFloat(),
			PrevRate:    randFloat(),
			Eff:         randFloat(),
			Cycles:      randFloat(),
			Remaining:   randFloat(),
			Energy:      randFloat(),
			Interactive: rng.Intn(2) == 0,
		}
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		got := ev.AppendJSON(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("AppendJSON mismatch for %+v:\n got %s\nwant %s", ev, got, want)
		}
	}
}

func TestAppendJSONFloatNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := string(AppendJSONFloat(nil, v)); got != "null" {
			t.Errorf("AppendJSONFloat(%v) = %q, want null", v, got)
		}
	}
}

func TestEventAppendJSONRoundTrips(t *testing.T) {
	for _, ev := range appendCorpus {
		if ev.Kind == "bad utf8 \xff\xfe end" {
			continue // replacement chars don't round-trip by design
		}
		var back Event
		if err := json.Unmarshal(ev.AppendJSON(nil), &back); err != nil {
			t.Fatalf("unmarshal %s: %v", ev.AppendJSON(nil), err)
		}
		if !reflect.DeepEqual(ev, back) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", ev, back)
		}
	}
}

func TestJSONLWriterEmitZeroAlloc(t *testing.T) {
	w := NewJSONLWriter(io.Discard)
	ev := Event{Seq: 42, T: 1.25, Kind: KindStart, Core: 3, Task: 9, Rate: 2.4, Eff: 1.251, Remaining: 7.5, Energy: 12.25}
	w.Emit(ev) // warm the scratch buffer
	allocs := testing.AllocsPerRun(200, func() {
		ev.Seq++
		w.Emit(ev)
	})
	// bufio flushes to io.Discard without allocating, so the steady
	// state is zero; a regression here lands straight on the session
	// event-streaming hot path.
	if allocs != 0 {
		t.Errorf("JSONLWriter.Emit allocates %v per event, want 0", allocs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.5, 1.5, 3})
	// Upper bounds are inclusive, Prometheus-style.
	for _, v := range []float64{-1, 0, 0.5} {
		h.Observe(v)
	}
	h.Observe(math.Nextafter(0.5, 1)) // just above the first bound
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(math.Nextafter(3, 4)) // overflow bucket
	h.Observe(1e9)
	h.Observe(math.NaN()) // dropped
	s := h.Snapshot()
	if want := []uint64{3, 2, 1, 2}; !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Min != -1 || s.Max != 1e9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestHistogramMergeUnderConcurrency(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	shared := newHistogram(bounds)
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := newHistogram(bounds)
			for i := 0; i < each; i++ {
				// Integer-valued observations so the float sum is exact.
				local.Observe(float64(i%10 + w))
				if i%100 == 99 {
					if err := shared.Merge(local.Snapshot()); err != nil {
						t.Error(err)
						return
					}
					local = newHistogram(bounds)
				}
			}
			if err := shared.Merge(local.Snapshot()); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()

	// Replay serially for the exact expected state.
	want := newHistogram(bounds)
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			want.Observe(float64(i%10 + w))
		}
	}
	got, exp := shared.Snapshot(), want.Snapshot()
	if !reflect.DeepEqual(got, exp) {
		t.Errorf("merged snapshot = %+v, want %+v", got, exp)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if err := h.Merge(newHistogram([]float64{1, 2, 3}).Snapshot()); err == nil {
		t.Error("want error for different bound count")
	}
	if err := h.Merge(newHistogram([]float64{1, 2.5}).Snapshot()); err == nil {
		t.Error("want error for different bound values")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("rejected merges must not mutate: %+v", s)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	allocs := testing.AllocsPerRun(200, func() { h.Observe(3) })
	if allocs != 0 {
		t.Errorf("Observe allocates %v, want 0", allocs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct{ q, want float64 }{
		{0, 0.5},    // clamps to Min
		{0.5, 2},    // rank 2 interpolates to the (1,2] bucket's top
		{1, 3.5},    // overflow bucket bounded by Max
		{-0.5, 0.5}, // out-of-range q clamps
		{1.5, 3.5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}

	// A single-bucket mass interpolates between the observed extremes.
	h2 := newHistogram([]float64{100})
	for i := 1; i <= 10; i++ {
		h2.Observe(float64(i))
	}
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.5); got < 1 || got > 10 {
		t.Errorf("single-bucket median = %v, want within [1,10]", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range [][3]float64{{0, 2, 3}, {-1, 2, 3}, {1, 1, 3}, {1, 0.5, 3}, {1, 2, 0}} {
		if b := ExpBuckets(bad[0], bad[1], int(bad[2])); b != nil {
			t.Errorf("ExpBuckets(%v) = %v, want nil", bad, b)
		}
	}
}

func TestRegistryHistogramRenderingDeterministic(t *testing.T) {
	// Build the same registry twice with different insertion orders;
	// the rendered /metrics JSON must be byte-identical.
	build := func(order []string) *Registry {
		reg := NewRegistry()
		for _, name := range order {
			h := reg.Histogram(name, []float64{0.001, 0.01, 0.1, 1})
			h.Observe(0.005)
			h.Observe(0.05)
			h.Observe(5)
		}
		reg.Counter("server.requests").Add(3)
		return reg
	}
	var b1, b2 bytes.Buffer
	if err := build([]string{"server.latency_s", "server.sessions.batch_size"}).WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build([]string{"server.sessions.batch_size", "server.latency_s"}).WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("histogram rendering depends on insertion order:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	hs, ok := snap.Histograms["server.latency_s"]
	if !ok {
		t.Fatalf("rendered snapshot missing histogram: %s", b1.String())
	}
	if hs.Count != 3 || len(hs.Counts) != 5 {
		t.Errorf("rendered histogram = %+v", hs)
	}
}

func BenchmarkEventAppendJSON(b *testing.B) {
	ev := Event{Seq: 42, T: 1.25, Kind: KindStart, Core: 3, Task: 9, Rate: 2.4, Eff: 1.251, Remaining: 7.5, Energy: 12.25}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = ev.AppendJSON(buf[:0])
	}
	_ = buf
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(ExpBuckets(1e-5, 2, 20))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0001
		for pb.Next() {
			h.Observe(v)
			v *= 1.0000001
		}
	})
}
