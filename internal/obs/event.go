// Package obs is the observability layer of the simulator and the
// schedulers: a structured event stream describing a schedule as it
// unfolds (task arrivals, starts, preemptions, completions, DVFS level
// changes, core idle/active transitions), pluggable sinks consuming
// that stream, a goroutine-safe metrics registry (counters, gauges,
// histograms), and an invariant-checking sink that validates
// conservation properties online.
//
// The package depends only on the standard library so every layer of
// the system — the engine hot path, the schedulers, the CLIs — can
// emit into it without import cycles. Events carry enough information
// that a run's report (Gantt chart, per-segment CSV) is a pure
// function of its trace: package report replays a JSONL event dump
// into the same renderings it produces from a live simulation.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Kind classifies an event.
type Kind string

// Event kinds. The schema is append-only: new kinds may be added, but
// existing kinds and their field meanings stay stable so persisted
// traces remain replayable.
const (
	// KindArrival: a task entered the system (Task, Cycles,
	// Interactive set; Core is -1).
	KindArrival Kind = "arrival"
	// KindStart: a task started (or resumed) on Core at Rate. Eff is
	// the instant execution effectively begins after any frequency-
	// switch stall; Energy is the task's cumulative joules so far
	// (non-zero when resuming) and Remaining its outstanding Gcycles.
	KindStart Kind = "start"
	// KindPreempt: the task running on Core was paused with Remaining
	// Gcycles left; Energy is its cumulative joules.
	KindPreempt Kind = "preempt"
	// KindComplete: the task running on Core finished; Energy is its
	// final joules.
	KindComplete Kind = "complete"
	// KindDVFS: Core's frequency changed from PrevRate to Rate. Eff is
	// when the new rate takes effect (after the switch stall) for a
	// running task; Task is the affected task or -1 if the core was
	// idle.
	KindDVFS Kind = "dvfs"
	// KindCoreActive: Core transitioned idle -> busy.
	KindCoreActive Kind = "core-active"
	// KindCoreIdle: Core transitioned busy -> idle.
	KindCoreIdle Kind = "core-idle"
)

// Event is one element of the structured event stream. Times are
// virtual-simulation seconds. Core and Task use -1 when the event is
// not scoped to a core or task.
type Event struct {
	// Seq is the 1-based emission index; strictly increasing within a
	// run.
	Seq uint64 `json:"seq"`
	// T is the event time in seconds.
	T float64 `json:"t"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Core is the core index, or -1.
	Core int `json:"core"`
	// Task is the task ID, or -1.
	Task int `json:"task"`
	// Rate is the (new) processing rate in GHz, for start/dvfs events.
	Rate float64 `json:"rate,omitempty"`
	// PrevRate is the rate before a dvfs event, in GHz.
	PrevRate float64 `json:"prevRate,omitempty"`
	// Eff is the instant the event's effect reaches execution (start
	// of charged cycles after a switch stall); 0 means "equal to T".
	Eff float64 `json:"eff,omitempty"`
	// Cycles is the task's total length in Gcycles.
	Cycles float64 `json:"cycles,omitempty"`
	// Remaining is the task's outstanding Gcycles at the event.
	Remaining float64 `json:"remaining,omitempty"`
	// Energy is the task's cumulative consumed joules at the event.
	Energy float64 `json:"energy,omitempty"`
	// Interactive marks interactive (user-initiated) tasks.
	Interactive bool `json:"interactive,omitempty"`
}

// EffectiveAt returns when the event's effect reaches execution: Eff
// if set, else T (no stall).
func (ev Event) EffectiveAt() float64 {
	if ev.Eff > ev.T {
		return ev.Eff
	}
	return ev.T
}

// AppendJSON appends the event's JSON encoding to b and returns the
// extended slice, producing bytes identical to encoding/json.Marshal
// (same field order, omitempty semantics, float format and string
// escaping) without allocating. It is the serving fast path for
// streaming session traces: the HTTP events endpoint and JSONLWriter
// frame thousands of events per response, and a pooled buffer plus
// this appender keeps that loop allocation-free. Non-finite floats
// (which the engine never emits) encode as null instead of failing.
func (ev Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"t":`...)
	b = AppendJSONFloat(b, ev.T)
	b = append(b, `,"kind":`...)
	b = AppendJSONString(b, string(ev.Kind))
	b = append(b, `,"core":`...)
	b = strconv.AppendInt(b, int64(ev.Core), 10)
	b = append(b, `,"task":`...)
	b = strconv.AppendInt(b, int64(ev.Task), 10)
	if ev.Rate != 0 {
		b = append(b, `,"rate":`...)
		b = AppendJSONFloat(b, ev.Rate)
	}
	if ev.PrevRate != 0 {
		b = append(b, `,"prevRate":`...)
		b = AppendJSONFloat(b, ev.PrevRate)
	}
	if ev.Eff != 0 {
		b = append(b, `,"eff":`...)
		b = AppendJSONFloat(b, ev.Eff)
	}
	if ev.Cycles != 0 {
		b = append(b, `,"cycles":`...)
		b = AppendJSONFloat(b, ev.Cycles)
	}
	if ev.Remaining != 0 {
		b = append(b, `,"remaining":`...)
		b = AppendJSONFloat(b, ev.Remaining)
	}
	if ev.Energy != 0 {
		b = append(b, `,"energy":`...)
		b = AppendJSONFloat(b, ev.Energy)
	}
	if ev.Interactive {
		b = append(b, `,"interactive":true`...)
	}
	return append(b, '}')
}

// AppendJSONFloat appends f exactly as encoding/json encodes a
// float64: shortest round-tripping decimal, 'f' form except for very
// small or very large magnitudes, with the exponent's leading zero
// stripped ("e+09" -> "e+9"). Non-finite values become null.
func AppendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// jsonSafe marks the bytes that pass through encoding/json's string
// encoder unescaped (with HTML escaping on, its default): printable
// ASCII except ", \, <, >, &.
var jsonSafe = func() (t [256]bool) {
	for c := 0x20; c < 0x80; c++ {
		t[c] = true
	}
	t['"'], t['\\'], t['<'], t['>'], t['&'] = false, false, false, false, false
	return
}()

const hexDigits = "0123456789abcdef"

// AppendJSONString appends s as a JSON string literal, byte-identical
// to encoding/json (including its HTML-escaping of <, >, &). The fast
// path copies safe runs; escapes fall back per byte. Invalid UTF-8 is
// replaced with U+FFFD like the standard encoder.
func AppendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control characters and the HTML-sensitive <, >, &.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		// encoding/json escapes U+2028/U+2029 for JS embedding.
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// Sink consumes an event stream. Emit is called from the simulator's
// event loop at every instrumented transition; implementations must
// not call back into the engine.
type Sink interface {
	Emit(Event)
}

// multiSink fans one stream out to several sinks.
type multiSink []Sink

func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Multi combines sinks into one; nil entries are dropped. It returns
// nil when no sink remains, and the sink itself when only one does.
func Multi(sinks ...Sink) Sink {
	var ms multiSink
	for _, s := range sinks {
		if s != nil {
			ms = append(ms, s)
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	default:
		return ms
	}
}

// recorderChunk is the event count per Recorder chunk.
const recorderChunk = 1024

// Recorder is a Sink that buffers every event in memory, for tests and
// for replaying a run without serializing it. Safe for concurrent
// Emit calls. The buffer is chunked rather than one flat slice: a
// session trace only grows, and a flat slice's doubling steps re-copy
// (and the allocator re-zeroes) the entire history — a pause on the
// emit hot path that scales with trace length and briefly doubles the
// trace's memory. Chunks keep Emit O(1); contiguous reads are rare and
// pay the copy instead.
type Recorder struct {
	mu     sync.Mutex
	chunks [][]Event
	n      int
}

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	if len(r.chunks) == 0 || len(r.chunks[len(r.chunks)-1]) == recorderChunk {
		r.chunks = append(r.chunks, make([]Event, 0, recorderChunk))
	}
	last := len(r.chunks) - 1
	r.chunks[last] = append(r.chunks[last], ev)
	r.n++
	r.mu.Unlock()
}

// suffixLocked locates the first recorded event with Seq > after,
// returning its chunk index and offset (len(r.chunks), 0 when no such
// event exists). Engine sequence numbers are nondecreasing in emission
// order, so the chunk is found by binary search on each chunk's last
// sequence number and the offset by binary search within it; every
// later chunk then lies entirely past `after`. Caller holds r.mu.
func (r *Recorder) suffixLocked(after uint64) (int, int) {
	ci := sort.Search(len(r.chunks), func(i int) bool {
		c := r.chunks[i]
		return c[len(c)-1].Seq > after
	})
	if ci == len(r.chunks) {
		return ci, 0
	}
	c := r.chunks[ci]
	return ci, sort.Search(len(c), func(i int) bool { return c[i].Seq > after })
}

// appendSinceLocked appends every recorded event with Seq > after to
// dst. Caller holds r.mu.
func (r *Recorder) appendSinceLocked(dst []Event, after uint64) []Event {
	ci, i := r.suffixLocked(after)
	if ci == len(r.chunks) {
		return dst
	}
	dst = append(dst, r.chunks[ci][i:]...)
	for _, c := range r.chunks[ci+1:] {
		dst = append(dst, c...)
	}
	return dst
}

// Events returns a copy of the recorded stream in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appendSinceLocked(make([]Event, 0, r.n), 0)
}

// Since returns a copy of the recorded events with Seq > after, in
// emission order; Since(0) is Events(). It is the replication fast
// path: a log shipper tracking the last shipped sequence number pulls
// only the unshipped tail.
func (r *Recorder) Since(after uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	ci, i := r.suffixLocked(after)
	if ci == len(r.chunks) {
		return []Event{}
	}
	// Every chunk but the last is full, so the suffix length is exact.
	out := make([]Event, 0, r.n-(ci*recorderChunk+i))
	return r.appendSinceLocked(out, after)
}

// AppendSince appends the recorded events with Seq > after to dst and
// returns the extended slice. It is Since without the forced
// allocation: the replication shipper passes a reused scratch slice,
// so building a coalesced frame costs no per-ship event copy beyond
// the append itself.
func (r *Recorder) AppendSince(dst []Event, after uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appendSinceLocked(dst, after)
}

// LastSeq returns the sequence number of the last recorded event, or 0
// when nothing was recorded. Engine sequence numbers are nondecreasing
// in emission order, so this is the log tail a replication ack must
// cover for every recorded event to be replicated.
func (r *Recorder) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.chunks) == 0 {
		return 0
	}
	c := r.chunks[len(r.chunks)-1]
	return c[len(c)-1].Seq
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// JSONLWriter is a Sink that streams events as JSON Lines. Errors are
// sticky: the first write or marshal failure is retained and reported
// by Close (and Err), and later events are dropped.
type JSONLWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	scratch []byte
	err     error
}

// NewJSONLWriter wraps w in a buffered JSONL event sink. Call Close
// (or Flush) before reading the destination.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (j *JSONLWriter) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.scratch = ev.AppendJSON(j.scratch[:0])
	j.scratch = append(j.scratch, '\n')
	if _, err := j.bw.Write(j.scratch); err != nil {
		j.err = fmt.Errorf("obs: write event %d: %w", ev.Seq, err)
	}
}

// Flush drains the buffer to the underlying writer.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.bw.Flush(); err != nil {
		j.err = fmt.Errorf("obs: flush: %w", err)
	}
	return j.err
}

// Close flushes and returns the first error encountered, if any. It
// does not close the underlying writer.
func (j *JSONLWriter) Close() error { return j.Flush() }

// Err returns the sticky error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL parses an event stream previously produced by JSONLWriter.
// Blank lines are skipped; events are returned in file order.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read: %w", err)
	}
	return events, nil
}
