package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically non-decreasing float64 accumulator, safe
// for concurrent use. The value is stored as atomic bits so the
// engine hot path never takes a lock.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by d (d must be >= 0; negative deltas are
// ignored to preserve monotonicity).
func (c *Counter) Add(d float64) {
	if d < 0 || math.IsNaN(d) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-value-wins float64 cell, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets (upper-bound
// inclusive, like Prometheus). Safe for concurrent use: Observe is
// lock-free (per-bucket atomic counters plus CAS-accumulated sum and
// extremes), so it can sit on the serving hot path — every HTTP
// request and every group-commit batch observes into one — without
// serializing the observers. Snapshot reads each cell atomically;
// cross-field consistency (count vs sum) is only guaranteed on a
// quiescent histogram, which is when dumps and tests read it.
type Histogram struct {
	bounds  []float64       // ascending upper bounds; implicit +Inf last
	counts  []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

// newHistogram builds a histogram over the given ascending bucket
// upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// casAdd accumulates d into a float64 stored as atomic bits.
func casAdd(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// casMin / casMax lower / raise a float64 stored as atomic bits.
func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	casAdd(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

// Merge folds a snapshot taken from another histogram with identical
// bucket bounds into this one — the aggregation path for per-worker
// local histograms (each goroutine observes into its own, then merges
// once), which keeps even the CAS traffic of Observe off the hottest
// loops. Safe to call concurrently with Observe and other Merges.
func (h *Histogram) Merge(s HistogramSnapshot) error {
	if len(s.Bounds) != len(h.bounds) {
		return fmt.Errorf("obs: merge: %d bounds into %d", len(s.Bounds), len(h.bounds))
	}
	for i, b := range s.Bounds {
		if b != h.bounds[i] { //dvfslint:allow floatcmp merge requires bit-identical bucket layouts, not approximate ones
			return fmt.Errorf("obs: merge: bound %d is %v, want %v", i, b, h.bounds[i])
		}
	}
	for i, c := range s.Counts {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	if s.Count == 0 {
		return nil
	}
	h.count.Add(s.Count)
	casAdd(&h.sumBits, s.Sum)
	casMin(&h.minBits, s.Min)
	casMax(&h.maxBits, s.Max)
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; the final bucket is +Inf.
	Bounds []float64 `json:"bounds"`
	// Counts holds len(Bounds)+1 per-bucket observation counts.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of observed values.
	Sum float64 `json:"sum"`
	// Min and Max are the observed extremes (0 when Count is 0).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the bucket counts, interpolating linearly inside
// the covering bucket. The open-ended first and last buckets are
// bounded by the observed Min and Max, so p99 of a histogram whose
// tail lands in the +Inf bucket reports a finite value. Returns 0
// when the snapshot is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	// A NaN q compares false against every bound below and would fall
	// through to Max; treat it like the q<0 clamp instead.
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		// The rank falls inside bucket i: [lo, hi].
		lo := s.Min
		if i > 0 {
			lo = math.Max(lo, s.Bounds[i-1])
		}
		hi := s.Max
		if i < len(s.Bounds) {
			hi = math.Min(hi, s.Bounds[i])
		}
		if hi <= lo {
			return lo
		}
		return lo + (hi-lo)*(rank-cum)/float64(c)
	}
	return s.Max
}

// Registry is a named collection of counters, gauges and histograms.
// Metric lookup takes a read lock; the returned metric handles are
// lock-free (counters, gauges) or internally locked (histograms), so
// callers should hold handles across the hot path instead of
// re-resolving names per event.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it
// with the given bucket upper bounds on first use (later calls reuse
// the existing buckets and ignore the argument).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry, suitable for JSON
// serialization. Maps marshal with sorted keys, so output is
// deterministic for deterministic runs.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// sortedKeys returns m's keys in ascending order, so dump paths visit
// metrics deterministically regardless of map iteration order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for name := range m {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot copies every metric's current value. Metrics are read in
// sorted name order, so two snapshots of the same quiescent registry
// are built identically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]float64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for _, name := range sortedKeys(r.counters) {
		s.Counters[name] = r.counters[name].Value()
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges[name] = r.gauges[name].Value()
	}
	for _, name := range sortedKeys(r.histograms) {
		s.Histograms[name] = r.histograms[name].Snapshot()
	}
	return s
}

// WriteJSON serializes a snapshot of the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal metrics: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Metric name helpers, so emitters and consumers agree on the schema.

// CoreMetric returns the per-core metric name "sim.core<i>.<field>".
func CoreMetric(core int, field string) string {
	return fmt.Sprintf("sim.core%d.%s", core, field)
}

// turnaroundBuckets spans interactive sub-second responses through
// hour-long batch turnarounds, in seconds.
var turnaroundBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000}

// ExpBuckets returns n geometrically spaced histogram bounds starting
// at start (start > 0, factor > 1): the standard layout for latency
// distributions, whose interesting structure spans orders of
// magnitude. The load harness uses it for client-side latencies.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// MetricsSink derives the standard simulator metrics from the event
// stream and feeds them into a Registry:
//
//	sim.tasks.arrived / started / preempted / completed   counters
//	sim.tasks.interactive_arrived                          counter
//	sim.energy_j                                           counter (J)
//	sim.dvfs.switches                                      counter
//	sim.active_cores                                       gauge
//	sim.core<i>.busy_seconds                               counter (s)
//	sim.core<i>.energy_j                                   counter (J)
//	sim.core<i>.switches                                   counter
//	sim.turnaround_s                                       histogram (s)
//
// Busy time and per-core energy are attributed when a core returns to
// idle (preempt or complete), so gauges lag mid-run by design.
type MetricsSink struct {
	reg *Registry

	arrived, started, preempted, completed *Counter
	interactiveArrived                     *Counter
	energy                                 *Counter
	switches                               *Counter
	activeCores                            *Gauge
	turnaround                             *Histogram

	arrivals    map[int]float64 // task -> arrival time
	startAt     map[int]float64 // core -> start time of current run
	startEnergy map[int]float64 // core -> task's cumulative J at start
}

// NewMetricsSink returns a sink feeding reg.
func NewMetricsSink(reg *Registry) *MetricsSink {
	return &MetricsSink{
		reg:                reg,
		arrived:            reg.Counter("sim.tasks.arrived"),
		started:            reg.Counter("sim.tasks.started"),
		preempted:          reg.Counter("sim.tasks.preempted"),
		completed:          reg.Counter("sim.tasks.completed"),
		interactiveArrived: reg.Counter("sim.tasks.interactive_arrived"),
		energy:             reg.Counter("sim.energy_j"),
		switches:           reg.Counter("sim.dvfs.switches"),
		activeCores:        reg.Gauge("sim.active_cores"),
		turnaround:         reg.Histogram("sim.turnaround_s", turnaroundBuckets),
		arrivals:           map[int]float64{},
		startAt:            map[int]float64{},
		startEnergy:        map[int]float64{},
	}
}

// Registry returns the registry the sink feeds.
func (m *MetricsSink) Registry() *Registry { return m.reg }

// Emit implements Sink. Emit is driven by the single-goroutine engine
// loop; the sink's own maps are not locked, but all registry writes
// are safe for concurrent readers.
func (m *MetricsSink) Emit(ev Event) {
	switch ev.Kind {
	case KindArrival:
		m.arrived.Inc()
		if ev.Interactive {
			m.interactiveArrived.Inc()
		}
		m.arrivals[ev.Task] = ev.T
	case KindStart:
		m.started.Inc()
		m.startAt[ev.Core] = ev.T
		m.startEnergy[ev.Core] = ev.Energy
	case KindPreempt:
		m.preempted.Inc()
		m.settleCore(ev)
	case KindComplete:
		m.completed.Inc()
		m.settleCore(ev)
		if at, ok := m.arrivals[ev.Task]; ok {
			m.turnaround.Observe(ev.T - at)
		}
	case KindDVFS:
		m.switches.Inc()
		m.reg.Counter(CoreMetric(ev.Core, "switches")).Inc()
	case KindCoreActive:
		m.activeCores.Add(1)
	case KindCoreIdle:
		m.activeCores.Add(-1)
	}
}

// settleCore attributes the finished occupancy's busy time and energy
// to the core.
func (m *MetricsSink) settleCore(ev Event) {
	if at, ok := m.startAt[ev.Core]; ok {
		m.reg.Counter(CoreMetric(ev.Core, "busy_seconds")).Add(ev.T - at)
		delete(m.startAt, ev.Core)
	}
	if e0, ok := m.startEnergy[ev.Core]; ok {
		d := ev.Energy - e0
		m.reg.Counter(CoreMetric(ev.Core, "energy_j")).Add(d)
		m.energy.Add(d)
		delete(m.startEnergy, ev.Core)
	}
}
