package obs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 7, Cycles: 12.5, Interactive: true},
		{Seq: 2, T: 0, Kind: KindStart, Core: 0, Task: 7, Rate: 3.0, Eff: 0.001, Energy: 0, Remaining: 12.5},
		{Seq: 3, T: 1.25, Kind: KindDVFS, Core: 0, Task: 7, PrevRate: 3.0, Rate: 1.6, Eff: 1.251},
		{Seq: 4, T: 4.125, Kind: KindComplete, Core: 0, Task: 7, Energy: 88.75},
		{Seq: 5, T: 4.125, Kind: KindCoreIdle, Core: 0, Task: -1},
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, ev := range in {
		w.Emit(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestJSONLReadSkipsBlankLines(t *testing.T) {
	src := "\n" + `{"seq":1,"t":0,"kind":"arrival","core":-1,"task":1}` + "\n\n"
	events, err := ReadJSONL(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindArrival {
		t.Errorf("events = %+v", events)
	}
}

func TestJSONLReadRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("want error for malformed line")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 16 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestJSONLWriterStickyError(t *testing.T) {
	w := NewJSONLWriter(&failWriter{})
	for i := 0; i < 100; i++ {
		w.Emit(Event{Seq: uint64(i + 1), Kind: KindArrival, Core: -1, Task: i})
	}
	if err := w.Close(); err == nil {
		t.Error("want sticky write error")
	}
	if w.Err() == nil {
		t.Error("Err() should report the failure")
	}
}

func TestMultiDropsNilsAndFansOut(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	r := &Recorder{}
	if got := Multi(nil, r); got != Sink(r) {
		t.Error("Multi with a single sink should return it unchanged")
	}
	r2 := &Recorder{}
	m := Multi(r, nil, r2)
	m.Emit(Event{Seq: 1, Kind: KindArrival, Core: -1, Task: 0})
	if r.Len() != 1 || r2.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", r.Len(), r2.Len())
	}
}

func TestEffectiveAt(t *testing.T) {
	if got := (Event{T: 2}).EffectiveAt(); got != 2 {
		t.Errorf("unset Eff: got %v", got)
	}
	if got := (Event{T: 2, Eff: 2.5}).EffectiveAt(); got != 2.5 {
		t.Errorf("set Eff: got %v", got)
	}
}

func TestCounterGaugeHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			g := reg.Gauge("g")
			h := reg.Histogram("h", []float64{0.5, 1.5})
			for i := 0; i < each; i++ {
				c.Add(0.5)
				g.Add(1)
				g.Add(-1)
				h.Observe(1)
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); math.Abs(got-workers*each*0.5) > 1e-9 {
		t.Errorf("counter = %v", got)
	}
	if got := reg.Gauge("g").Value(); got != 0 {
		t.Errorf("gauge = %v", got)
	}
	hs := reg.Histogram("h", nil).Snapshot()
	if hs.Count != workers*each || hs.Sum != workers*each {
		t.Errorf("histogram = %+v", hs)
	}
	if hs.Counts[1] != workers*each { // 1 falls in the (0.5, 1.5] bucket
		t.Errorf("bucket counts = %v", hs.Counts)
	}
	if hs.Min != 1 || hs.Max != 1 {
		t.Errorf("min/max = %v/%v", hs.Min, hs.Max)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-1)
	c.Add(math.NaN())
	if c.Value() != 3 {
		t.Errorf("counter = %v", c.Value())
	}
}

func TestRegistryWriteJSONDeterministic(t *testing.T) {
	mk := func() *Registry {
		reg := NewRegistry()
		reg.Counter("b").Add(2)
		reg.Counter("a").Add(1)
		reg.Gauge("z").Set(-4)
		reg.Histogram("h", []float64{1, 10}).Observe(3)
		return reg
	}
	var b1, b2 bytes.Buffer
	if err := mk().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("WriteJSON not deterministic")
	}
	for _, want := range []string{`"a": 1`, `"b": 2`, `"z": -4`, `"histograms"`} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b1.String())
		}
	}
}

// emitAll feeds a consistent two-task, one-core run into sink.
func emitAll(sink Sink) {
	for _, ev := range []Event{
		{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 10},
		{Seq: 2, T: 0, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 10},
		{Seq: 3, T: 0, Kind: KindCoreActive, Core: 0, Task: 1},
		{Seq: 4, T: 1, Kind: KindArrival, Core: -1, Task: 2, Cycles: 5, Interactive: true},
		{Seq: 5, T: 1, Kind: KindPreempt, Core: 0, Task: 1, Remaining: 7, Energy: 21.3},
		{Seq: 6, T: 1, Kind: KindCoreIdle, Core: 0, Task: -1},
		{Seq: 7, T: 1, Kind: KindStart, Core: 0, Task: 2, Rate: 3, Remaining: 5},
		{Seq: 8, T: 1, Kind: KindCoreActive, Core: 0, Task: 2},
		{Seq: 9, T: 2.65, Kind: KindComplete, Core: 0, Task: 2, Energy: 35.5},
		{Seq: 10, T: 2.65, Kind: KindCoreIdle, Core: 0, Task: -1},
		{Seq: 11, T: 2.65, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 7, Energy: 21.3},
		{Seq: 12, T: 2.65, Kind: KindCoreActive, Core: 0, Task: 1},
		{Seq: 13, T: 4.96, Kind: KindComplete, Core: 0, Task: 1, Energy: 71},
		{Seq: 14, T: 4.96, Kind: KindCoreIdle, Core: 0, Task: -1},
	} {
		sink.Emit(ev)
	}
}

func TestInvariantSinkAcceptsConsistentStream(t *testing.T) {
	inv := NewInvariantSink()
	emitAll(inv)
	if err := inv.Err(); err != nil {
		t.Errorf("unexpected violations: %v", err)
	}
	if inv.Violations() != 0 {
		t.Errorf("Violations() = %d", inv.Violations())
	}
}

func TestInvariantSinkDetectsViolations(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"double occupancy", []Event{
			{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 1},
			{Seq: 2, T: 0, Kind: KindArrival, Core: -1, Task: 2, Cycles: 1},
			{Seq: 3, T: 0, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 1},
			{Seq: 4, T: 0, Kind: KindStart, Core: 0, Task: 2, Rate: 3, Remaining: 1},
		}},
		{"time reversal", []Event{
			{Seq: 1, T: 5, Kind: KindArrival, Core: -1, Task: 1, Cycles: 1},
			{Seq: 2, T: 4, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 1},
		}},
		{"start before arrival", []Event{
			{Seq: 1, T: 0, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 1},
		}},
		{"completion without start", []Event{
			{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 1},
			{Seq: 2, T: 1, Kind: KindComplete, Core: 0, Task: 1, Energy: 1},
		}},
		{"energy decrease", []Event{
			{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 9},
			{Seq: 2, T: 0, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 9},
			{Seq: 3, T: 1, Kind: KindPreempt, Core: 0, Task: 1, Remaining: 5, Energy: 10},
			{Seq: 4, T: 2, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 5, Energy: 4},
		}},
		{"remaining grows", []Event{
			{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 9},
			{Seq: 2, T: 0, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 9},
			{Seq: 3, T: 1, Kind: KindPreempt, Core: 0, Task: 1, Remaining: 12},
		}},
		{"seq not increasing", []Event{
			{Seq: 2, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 1},
			{Seq: 2, T: 0, Kind: KindArrival, Core: -1, Task: 2, Cycles: 1},
		}},
		{"idle while busy", []Event{
			{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 1},
			{Seq: 2, T: 0, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 1},
			{Seq: 3, T: 0, Kind: KindCoreIdle, Core: 0, Task: -1},
		}},
		{"dvfs no-op", []Event{
			{Seq: 1, T: 0, Kind: KindDVFS, Core: 0, Task: -1, PrevRate: 2, Rate: 2},
		}},
		{"complete with remaining", []Event{
			{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 4},
			{Seq: 2, T: 0, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 4},
			{Seq: 3, T: 1, Kind: KindComplete, Core: 0, Task: 1, Remaining: 2, Energy: 1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inv := NewInvariantSink()
			var seen int
			inv.OnViolation = func(error) { seen++ }
			for _, ev := range tc.events {
				inv.Emit(ev)
			}
			if inv.Err() == nil {
				t.Error("violation not detected")
			}
			if seen == 0 {
				t.Error("OnViolation not invoked")
			}
		})
	}
}

func TestInvariantSinkCapsViolations(t *testing.T) {
	inv := NewInvariantSink()
	for i := 0; i < 2*maxViolations; i++ {
		// Every start lacks an arrival: one violation each (plus
		// occupancy clashes), far past the cap.
		inv.Emit(Event{Seq: uint64(i + 1), Kind: KindStart, Core: 0, Task: i, Rate: 1})
	}
	if inv.Violations() <= maxViolations {
		t.Errorf("Violations() = %d, want > %d", inv.Violations(), maxViolations)
	}
	if inv.Err() == nil {
		t.Error("want joined error")
	}
}

func TestMetricsSinkDerivesMetrics(t *testing.T) {
	reg := NewRegistry()
	emitAll(NewMetricsSink(reg))
	s := reg.Snapshot()
	checks := map[string]float64{
		"sim.tasks.arrived":             2,
		"sim.tasks.interactive_arrived": 1,
		"sim.tasks.started":             3,
		"sim.tasks.preempted":           1,
		"sim.tasks.completed":           2,
		"sim.energy_j":                  71 + 35.5,
		"sim.core0.busy_seconds":        4.96,
	}
	for name, want := range checks {
		if got := s.Counters[name]; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := s.Gauges["sim.active_cores"]; got != 0 {
		t.Errorf("active_cores = %v at quiesce", got)
	}
	h := s.Histograms["sim.turnaround_s"]
	if h.Count != 2 {
		t.Errorf("turnaround count = %d", h.Count)
	}
	// Task 2 waited 1 -> 2.65 (1.65 s), task 1 waited 0 -> 4.96.
	if math.Abs(h.Sum-(1.65+4.96)) > 1e-9 {
		t.Errorf("turnaround sum = %v", h.Sum)
	}
}
