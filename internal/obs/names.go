package obs

// Canonical metric names of the serving layer (internal/server), kept
// here so the emitting daemon and any dashboard or test consuming a
// Registry snapshot agree on the schema. The simulator-side names
// ("sim.*", "lmc.*", "dynsched.*") are documented on MetricsSink and
// the policies that emit them.
const (
	// ServerRequests counts HTTP requests accepted by the daemon
	// (anything that reached a handler, whatever the status).
	ServerRequests = "server.requests"
	// ServerFailures counts requests that ended in a 5xx, including
	// recovered panics.
	ServerFailures = "server.failures"
	// ServerRejected counts requests shed with 429 by a full plan
	// queue or session shard queue.
	ServerRejected = "server.rejected"
	// ServerPanics counts handler panics converted to 500s.
	ServerPanics = "server.panics"
	// ServerInFlight gauges requests currently inside a handler.
	ServerInFlight = "server.inflight"
	// ServerLatency is the per-request wall-time histogram, in seconds.
	ServerLatency = "server.latency_s"

	// ServerPlans counts batch plans computed by the planning plane
	// (cache misses that ran the planner).
	ServerPlans = "server.plans"
	// ServerPlansAborted counts in-flight plans aborted by request
	// cancellation or deadline (the context reached the planner and
	// stopped it mid-computation).
	ServerPlansAborted = "server.plans_aborted"
	// ServerPlanQueueDepth gauges the planning plane's queued jobs.
	ServerPlanQueueDepth = "server.plan.queue_depth"
	// ServerPlanCacheHits / Misses count result-cache lookups; their
	// ratio is the cache hit rate.
	ServerPlanCacheHits   = "server.plan.cache.hits"
	ServerPlanCacheMisses = "server.plan.cache.misses"

	// ServerSessionsOpen gauges live (not yet drained) session shards.
	ServerSessionsOpen = "server.sessions.open"
	// ServerSessionsOpened / Drained count session lifecycle edges.
	ServerSessionsOpened  = "server.sessions.opened"
	ServerSessionsDrained = "server.sessions.drained"
	// ServerSessionTasks counts tasks accepted across all sessions.
	ServerSessionTasks = "server.sessions.tasks_accepted"
	// ServerSessionBatchSize is the histogram of group-commit batch
	// sizes: how many concurrent submits each shard-lock acquisition
	// admitted. A mass at 1 means no coalescing (light traffic); mass
	// in the higher buckets is the amortization working.
	ServerSessionBatchSize = "server.sessions.batch_size"

	// ClusterForwards counts session operations this node proxied to
	// another node because the consistent-hash ring placed the session
	// elsewhere.
	ClusterForwards = "cluster.forwards"
	// ClusterForwardErrors counts forwards that failed at the transport
	// layer (the peer was marked down and the request failed over or
	// surfaced as a 502).
	ClusterForwardErrors = "cluster.forward_errors"
	// ClusterReplicationErrors counts replication attempts (log ship,
	// checkpoint ship, replica open) that failed after retry.
	ClusterReplicationErrors = "cluster.replication_errors"
	// ClusterShips counts successful replication rounds: each one left
	// the replica's log covering every event the owner had emitted.
	ClusterShips = "cluster.ships"
	// ClusterPromotions counts sessions this node rebuilt from a
	// replicated checkpoint + log and adopted as owner after the
	// previous owner died.
	ClusterPromotions = "cluster.promotions"
	// ClusterPeersDown gauges peers currently considered dead.
	ClusterPeersDown = "cluster.peers_down"
	// ClusterEpoch gauges this node's membership epoch: it bumps by one
	// on every accepted join or leave, so divergence between nodes'
	// epochs is visible from any two /metrics scrapes.
	ClusterEpoch = "cluster.epoch"
	// ClusterMigrations counts planned session migrations this node
	// completed as the outgoing owner (drain-and-handoff, not failover
	// promotions — those are ClusterPromotions).
	ClusterMigrations = "cluster.migrations"
	// ClusterMembershipSyncs counts membership views this node adopted
	// from a peer (push broadcast or epoch-triggered anti-entropy pull).
	ClusterMembershipSyncs = "cluster.membership_syncs"

	// ClusterShipFrames counts coalesced replication frames sent by the
	// per-peer shipper streams. ClusterShips counts acked per-session
	// entries, so ships/frames is the average coalescing factor.
	ClusterShipFrames = "cluster.ship.frames"
	// ClusterShipFrameSessions is the histogram of sessions coalesced
	// into each frame. Mass at 1 means no coalescing (light traffic);
	// mass in higher buckets is the stream amortization working —
	// the replication-plane analogue of ServerSessionBatchSize.
	ClusterShipFrameSessions = "cluster.ship.frame_sessions"
	// ClusterShipFrameEvents is the histogram of log events carried per
	// frame across all its sessions.
	ClusterShipFrameEvents = "cluster.ship.frame_events"
	// ClusterShipInflight gauges replication frames currently in flight
	// across all peer streams (bounded per peer by the ship window).
	ClusterShipInflight = "cluster.ship.inflight"
	// ClusterShipAckWait is the histogram of replication-ack wait time
	// in seconds: how long a mutation's response was held between its
	// local commit and the stream ack covering its event sequence. This
	// is the replication lag a client-visible submit pays.
	ClusterShipAckWait = "cluster.ship.ack_wait_s"
	// ClusterShipHeals counts stream heal rounds: the replica reported
	// a log gap (or vanished) and the owner reset the cursor to re-ship
	// the full log.
	ClusterShipHeals = "cluster.ship.heals"
)
