package obs

import (
	"errors"
	"fmt"
	"sync"
)

// maxViolations bounds how many violations an InvariantSink retains,
// so a systematically broken run doesn't accumulate unbounded errors.
const maxViolations = 32

// InvariantSink validates conservation properties of the event stream
// online:
//
//   - sequence numbers strictly increase and event times never go
//     backwards (time monotonicity);
//   - at most one task runs on a core at any instant, and start/
//     preempt/complete/idle/active transitions are mutually
//     consistent;
//   - a task must arrive before it starts, start at or after its
//     arrival, and complete at or after its arrival (completion >=
//     arrival);
//   - a task completes at most once and never restarts afterwards;
//   - a task's cumulative energy never decreases (energy
//     monotonicity) and its remaining work never increases;
//   - effect times (Eff) never precede their event (no retroactive
//     frequency switches).
//
// Violations are collected (up to a cap) and reported by Err; an
// optional OnViolation callback observes each one as it is detected,
// which tests use to fail fast.
type InvariantSink struct {
	// OnViolation, if non-nil, is invoked synchronously with each
	// detected violation. Set before the first Emit.
	OnViolation func(error)

	mu      sync.Mutex
	lastSeq uint64
	lastT   float64
	cores   map[int]int       // core -> running task ID
	tasks   map[int]*taskView // task ID -> observed state
	errs    []error
	dropped int
}

// taskView is the sink's model of one task.
type taskView struct {
	arrival   float64
	arrived   bool
	done      bool
	runningOn int // core index, or -1
	energy    float64
	remaining float64
	hasRem    bool
}

// NewInvariantSink returns an empty checker.
func NewInvariantSink() *InvariantSink {
	return &InvariantSink{
		cores: map[int]int{},
		tasks: map[int]*taskView{},
	}
}

func (s *InvariantSink) violate(format string, args ...interface{}) {
	err := fmt.Errorf("obs: invariant: "+format, args...)
	if len(s.errs) < maxViolations {
		s.errs = append(s.errs, err)
	} else {
		s.dropped++
	}
	if s.OnViolation != nil {
		s.OnViolation(err)
	}
}

// Err returns all recorded violations joined, or nil if the stream has
// been consistent so far.
func (s *InvariantSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) == 0 {
		return nil
	}
	errs := s.errs
	if s.dropped > 0 {
		errs = append(append([]error(nil), errs...),
			fmt.Errorf("obs: invariant: %d further violations dropped", s.dropped))
	}
	return errors.Join(errs...)
}

// Violations returns the number of violations detected so far.
func (s *InvariantSink) Violations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.errs) + s.dropped
}

func (s *InvariantSink) task(id int) *taskView {
	tv := s.tasks[id]
	if tv == nil {
		tv = &taskView{runningOn: -1}
		s.tasks[id] = tv
	}
	return tv
}

// Emit implements Sink.
func (s *InvariantSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if ev.Seq <= s.lastSeq {
		s.violate("event %v: seq %d not increasing (last %d)", ev.Kind, ev.Seq, s.lastSeq)
	}
	s.lastSeq = ev.Seq
	if ev.T < s.lastT {
		s.violate("event %v (seq %d): time went backwards (%v -> %v)", ev.Kind, ev.Seq, s.lastT, ev.T)
	}
	s.lastT = ev.T
	if ev.Eff != 0 && ev.Eff < ev.T {
		s.violate("%v of task %d: effect time %v precedes event time %v", ev.Kind, ev.Task, ev.Eff, ev.T)
	}

	switch ev.Kind {
	case KindArrival:
		tv := s.task(ev.Task)
		if tv.arrived {
			s.violate("task %d arrived twice (t=%v)", ev.Task, ev.T)
		}
		tv.arrived = true
		tv.arrival = ev.T
		tv.remaining = ev.Cycles
		tv.hasRem = true

	case KindStart:
		tv := s.task(ev.Task)
		if !tv.arrived {
			s.violate("task %d started at %v before arriving", ev.Task, ev.T)
		} else if ev.T < tv.arrival {
			s.violate("task %d started at %v before its arrival %v", ev.Task, ev.T, tv.arrival)
		}
		if tv.done {
			s.violate("task %d restarted at %v after completing", ev.Task, ev.T)
		}
		if tv.runningOn >= 0 {
			s.violate("task %d started on core %d while running on core %d", ev.Task, ev.Core, tv.runningOn)
		}
		if other, busy := s.cores[ev.Core]; busy {
			s.violate("two tasks on core %d at %v: %d started while %d runs", ev.Core, ev.T, ev.Task, other)
		}
		s.checkEnergy(ev, tv)
		s.checkRemaining(ev, tv)
		s.cores[ev.Core] = ev.Task
		tv.runningOn = ev.Core

	case KindPreempt:
		tv := s.task(ev.Task)
		s.checkRunning(ev, tv)
		s.checkEnergy(ev, tv)
		s.checkRemaining(ev, tv)
		delete(s.cores, ev.Core)
		tv.runningOn = -1

	case KindComplete:
		tv := s.task(ev.Task)
		s.checkRunning(ev, tv)
		if tv.done {
			s.violate("task %d completed twice (t=%v)", ev.Task, ev.T)
		}
		if tv.arrived && ev.T < tv.arrival {
			s.violate("task %d completed at %v before its arrival %v", ev.Task, ev.T, tv.arrival)
		}
		s.checkEnergy(ev, tv)
		if ev.Remaining != 0 {
			s.violate("task %d completed with %v Gcycles remaining", ev.Task, ev.Remaining)
		}
		tv.done = true
		delete(s.cores, ev.Core)
		tv.runningOn = -1

	case KindDVFS:
		//dvfslint:allow floatcmp both rates are verbatim table levels; an exact match is a genuinely redundant switch
		if ev.Rate == ev.PrevRate {
			s.violate("dvfs on core %d at %v: rate unchanged (%v GHz)", ev.Core, ev.T, ev.Rate)
		}
		if running, busy := s.cores[ev.Core]; busy && ev.Task >= 0 && running != ev.Task {
			s.violate("dvfs on core %d names task %d but %d is running", ev.Core, ev.Task, running)
		}

	case KindCoreActive:
		if _, busy := s.cores[ev.Core]; !busy {
			s.violate("core %d reported active at %v with no running task", ev.Core, ev.T)
		}

	case KindCoreIdle:
		if running, busy := s.cores[ev.Core]; busy {
			s.violate("core %d reported idle at %v while task %d runs", ev.Core, ev.T, running)
		}

	default:
		s.violate("unknown event kind %q (seq %d)", ev.Kind, ev.Seq)
	}
}

// checkRunning validates that the event's task is the one occupying
// its core.
func (s *InvariantSink) checkRunning(ev Event, tv *taskView) {
	if running, busy := s.cores[ev.Core]; !busy {
		s.violate("%v of task %d on idle core %d at %v", ev.Kind, ev.Task, ev.Core, ev.T)
	} else if running != ev.Task {
		s.violate("%v of task %d on core %d, but task %d is running", ev.Kind, ev.Task, ev.Core, running)
	}
	if tv.runningOn != ev.Core {
		s.violate("%v of task %d on core %d, but the task believes it runs on %d", ev.Kind, ev.Task, ev.Core, tv.runningOn)
	}
}

// checkEnergy enforces per-task energy monotonicity.
func (s *InvariantSink) checkEnergy(ev Event, tv *taskView) {
	if ev.Energy < 0 {
		s.violate("task %d has negative energy %v at %v", ev.Task, ev.Energy, ev.T)
	}
	if ev.Energy < tv.energy {
		s.violate("task %d energy decreased %v -> %v at %v", ev.Task, tv.energy, ev.Energy, ev.T)
	}
	tv.energy = ev.Energy
}

// checkRemaining enforces that outstanding work never grows.
func (s *InvariantSink) checkRemaining(ev Event, tv *taskView) {
	const slack = 1e-9
	if tv.hasRem && ev.Remaining > tv.remaining+slack {
		s.violate("task %d remaining grew %v -> %v at %v", ev.Task, tv.remaining, ev.Remaining, ev.T)
	}
	tv.remaining = ev.Remaining
	tv.hasRem = true
}
