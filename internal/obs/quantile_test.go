package obs

import (
	"math"
	"testing"
)

// TestQuantileEmpty: an empty histogram answers 0 for every q,
// including degenerate ones.
func TestQuantileEmpty(t *testing.T) {
	s := newHistogram([]float64{1, 2, 4}).Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

// TestQuantileSinglePopulatedBucket: with all mass in one interior
// bucket the quantile interpolates between the observed Min and Max,
// never the raw bucket bounds.
func TestQuantileSinglePopulatedBucket(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{3, 5, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct{ q, want float64 }{
		{0, 3},   // Min, not the bucket's lower bound 1
		{0.5, 5}, // linear midpoint of [Min, Max]
		{1, 7},   // Max, not the bucket's upper bound 10
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestQuantileExtremes: q=0 is the observed minimum and q=1 the
// observed maximum even when the extremes land in the open-ended
// underflow/overflow buckets.
func TestQuantileExtremes(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for _, v := range []float64{0.25, 1.5, 9} { // under, interior, over
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Quantile(0) = %v, want Min 0.25", got)
	}
	if got := s.Quantile(1); math.Abs(got-9) > 1e-12 {
		t.Errorf("Quantile(1) = %v, want Max 9", got)
	}
}

// TestQuantileNaNGuard: a NaN q clamps to 0 (the Min) instead of
// propagating NaN or falling through to Max, and NaN observations are
// dropped by Observe so they can never poison the counts.
func TestQuantileNaNGuard(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(math.NaN()) // ignored
	h.Observe(1.5)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("NaN observation was counted: Count = %d", s.Count)
	}
	got := s.Quantile(math.NaN())
	if math.IsNaN(got) {
		t.Fatal("Quantile(NaN) propagated NaN")
	}
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Quantile(NaN) = %v, want the Min 1.5", got)
	}
}
