package obs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// binaryNormalize maps an event to the value a binary round trip
// produces: optional fields equal to zero lose their sign bit (the
// flag-clear path cannot distinguish -0 from +0), exactly as the JSONL
// omitempty path drops them. T and the required fields round-trip
// bit-exactly, including -0 and non-finite values.
func binaryNormalize(ev Event) Event {
	norm := func(v float64) float64 {
		if v == 0 {
			return 0
		}
		return v
	}
	ev.Rate = norm(ev.Rate)
	ev.PrevRate = norm(ev.PrevRate)
	ev.Eff = norm(ev.Eff)
	ev.Cycles = norm(ev.Cycles)
	ev.Remaining = norm(ev.Remaining)
	ev.Energy = norm(ev.Energy)
	return ev
}

// eventsBitEqual compares decoded streams by bit pattern so NaN
// payloads count as equal and -0 differs from +0.
func eventsBitEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Seq != y.Seq || x.Kind != y.Kind || x.Core != y.Core ||
			x.Task != y.Task || x.Interactive != y.Interactive {
			return false
		}
		for _, p := range [][2]float64{
			{x.T, y.T}, {x.Rate, y.Rate}, {x.PrevRate, y.PrevRate},
			{x.Eff, y.Eff}, {x.Cycles, y.Cycles},
			{x.Remaining, y.Remaining}, {x.Energy, y.Energy},
		} {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				return false
			}
		}
	}
	return true
}

// binaryCorpus extends the JSON append corpus with cases the binary
// format alone must handle bit-exactly: non-finite floats, negative
// zero in T, large magnitudes, and adversarial kind strings.
func binaryCorpus() []Event {
	evs := append([]Event(nil), appendCorpus...)
	evs = append(evs,
		Event{Seq: 9, T: math.NaN(), Kind: KindDVFS, Core: 1, Task: -1, Rate: math.Inf(1), PrevRate: math.Inf(-1)},
		Event{Seq: 10, T: math.Copysign(0, -1), Kind: KindCoreIdle, Core: 2, Task: -1},
		Event{Seq: 10, T: 0, Kind: KindCoreIdle, Core: 2, Task: -1}, // zero Seq delta
		Event{Seq: 5, T: -1, Kind: KindCoreActive, Core: 0, Task: -1}, // Seq going backwards (wrapping delta)
		Event{Seq: 1 << 63, T: 1e308, Kind: Kind(strings.Repeat("k", 300)), Core: 1 << 30, Task: -(1 << 30)},
		Event{Kind: ""},
	)
	return evs
}

func TestBinaryRoundTripCorpus(t *testing.T) {
	events := binaryCorpus()
	enc := AppendBinary(nil, events)
	got, err := ReadBinary(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Event, len(events))
	for i, ev := range events {
		want[i] = binaryNormalize(ev)
	}
	if !eventsBitEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Re-encoding the decoded stream must be byte-identical: the format
	// is a fixed point after one round trip.
	if again := AppendBinary(nil, got); !bytes.Equal(enc, again) {
		t.Fatal("re-encode of decoded stream differs from original encoding")
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7)) // deterministic corpus, not randomness
	kinds := []Kind{KindArrival, KindStart, KindPreempt, KindComplete, KindDVFS, KindCoreActive, KindCoreIdle}
	randFloat := func() float64 {
		v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
		if rng.Intn(8) == 0 {
			v = 0
		}
		return v
	}
	seq := uint64(0)
	tm := 0.0
	events := make([]Event, 20000) // several frames' worth
	for i := range events {
		seq += uint64(rng.Intn(3))
		tm += rng.Float64()
		events[i] = Event{
			Seq:         seq,
			T:           tm,
			Kind:        kinds[rng.Intn(len(kinds))],
			Core:        rng.Intn(64) - 1,
			Task:        rng.Intn(1<<20) - 1,
			Rate:        randFloat(),
			PrevRate:    randFloat(),
			Eff:         randFloat(),
			Cycles:      randFloat(),
			Remaining:   randFloat(),
			Energy:      randFloat(),
			Interactive: rng.Intn(2) == 0,
		}
	}
	enc := AppendBinary(nil, events)
	if len(enc) < binaryFrameTarget {
		t.Fatalf("corpus too small to exercise frame sealing: %d bytes", len(enc))
	}
	got, err := ReadBinary(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !eventsBitEqual(got, events) {
		t.Fatal("random round trip mismatch")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var enc BinaryEncoder
	out := enc.Flush(nil)
	if len(out) != binaryHeaderLen {
		t.Fatalf("empty trace = %d bytes, want %d (header only)", len(out), binaryHeaderLen)
	}
	events, err := ReadBinary(bytes.NewReader(out))
	if err != nil || len(events) != 0 {
		t.Fatalf("decode empty trace: %v, %d events", err, len(events))
	}
}

func TestBinaryEncoderReset(t *testing.T) {
	events := binaryCorpus()
	var enc BinaryEncoder
	var first []byte
	for _, ev := range events {
		first = enc.AppendEvent(first, ev)
	}
	first = enc.Flush(first)
	enc.Reset()
	var second []byte
	for _, ev := range events {
		second = enc.AppendEvent(second, ev)
	}
	second = enc.Flush(second)
	if !bytes.Equal(first, second) {
		t.Fatal("Reset does not restore the empty-stream state")
	}
}

func TestBinaryReaderHeaderErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"short", []byte("DV"), ErrBadMagic},
		{"jsonl", []byte(`{"seq":1}` + "\n"), ErrBadMagic},
		{"future version", append(BinaryMagic(), binaryVersion+1), ErrBadVersion},
		{"version zero", append(BinaryMagic(), 0), ErrBadVersion},
	}
	for _, c := range cases {
		_, err := ReadBinary(bytes.NewReader(c.in))
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// sealedFrames encodes events so that each call boundary is a frame
// boundary, returning the stream plus each frame's [start,end) offsets.
func sealedFrames(t *testing.T, groups [][]Event) ([]byte, [][2]int) {
	t.Helper()
	var enc BinaryEncoder
	var out []byte
	var bounds [][2]int
	for _, g := range groups {
		for _, ev := range g {
			out = enc.AppendEvent(out, ev)
		}
		start := len(out)
		if start == 0 {
			start = binaryHeaderLen // header not yet emitted for empty first group
		}
		out = enc.Flush(out)
		bounds = append(bounds, [2]int{start, len(out)})
	}
	return out, bounds
}

func TestBinaryReaderSkipsDamagedFrame(t *testing.T) {
	groups := [][]Event{
		{{Seq: 1, T: 1, Kind: KindArrival, Core: -1, Task: 1, Cycles: 2}},
		{{Seq: 2, T: 2, Kind: KindStart, Core: 0, Task: 1, Rate: 3}},
		{{Seq: 3, T: 3, Kind: KindComplete, Core: 0, Task: 1, Energy: 4}},
	}
	stream, bounds := sealedFrames(t, groups)

	// Flip one payload byte in the middle frame.
	corrupt := append([]byte(nil), stream...)
	corrupt[bounds[1][0]+8] ^= 0xff

	r := NewBinaryReader(bytes.NewReader(corrupt))
	ev, err := r.Next()
	if err != nil || ev.Seq != 1 {
		t.Fatalf("frame 0: %+v, %v", ev, err)
	}
	_, err = r.Next()
	var ferr *FrameError
	if !errors.As(err, &ferr) || !errors.Is(err, ErrFrameChecksum) {
		t.Fatalf("damaged frame: err = %v, want FrameError{ErrFrameChecksum}", err)
	}
	if ferr.Frame != 1 {
		t.Errorf("FrameError.Frame = %d, want 1", ferr.Frame)
	}
	if want := int64(bounds[1][0]); ferr.Offset != want {
		t.Errorf("FrameError.Offset = %d, want %d", ferr.Offset, want)
	}
	// The reader resumes with the frame after the damage.
	ev, err = r.Next()
	if err != nil || ev.Seq != 3 {
		t.Fatalf("frame after damage: %+v, %v", ev, err)
	}
	if _, err = r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// Strict decode refuses the damaged stream outright.
	if _, err := ReadBinary(bytes.NewReader(corrupt)); !errors.Is(err, ErrFrameChecksum) {
		t.Fatalf("strict decode: %v, want ErrFrameChecksum", err)
	}
}

func TestBinaryReaderTruncatedTail(t *testing.T) {
	groups := [][]Event{
		{{Seq: 1, T: 1, Kind: KindArrival, Core: -1, Task: 1}},
		{{Seq: 2, T: 2, Kind: KindStart, Core: 0, Task: 1}},
	}
	stream, bounds := sealedFrames(t, groups)
	for _, cut := range []int{
		bounds[1][0] + 3,  // mid-header
		bounds[1][0] + 10, // mid-payload
	} {
		r := NewBinaryReader(bytes.NewReader(stream[:cut]))
		if ev, err := r.Next(); err != nil || ev.Seq != 1 {
			t.Fatalf("cut %d, intact frame: %+v, %v", cut, ev, err)
		}
		_, err := r.Next()
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrFrameTruncated", cut, err)
		}
		// Nothing can follow a truncated tail.
		if _, err = r.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("cut %d after truncation: %v, want io.EOF", cut, err)
		}
	}
}

func TestBinaryReaderCorruptFramePayload(t *testing.T) {
	// A frame whose CRC is valid but whose payload is garbage: rewrite
	// a sealed frame's payload and fix up the CRC, as a buggy encoder
	// would.
	stream, bounds := sealedFrames(t, [][]Event{
		{{Seq: 1, T: 1, Kind: KindArrival, Core: -1, Task: 1}},
		{{Seq: 2, T: 2, Kind: KindStart, Core: 0, Task: 1}},
	})
	corrupt := append([]byte(nil), stream...)
	payload := corrupt[bounds[0][0]+8 : bounds[0][1]]
	payload[0] = 0x85 // kind index far beyond the dictionary
	for i := 1; i < len(payload); i++ {
		payload[i] = 0x80 // unterminated varint
	}
	fixCRC(corrupt[bounds[0][0]:bounds[0][1]])

	r := NewBinaryReader(bytes.NewReader(corrupt))
	_, err := r.Next()
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("corrupt payload: err = %v, want ErrFrameCorrupt", err)
	}
	// The next frame still decodes.
	if ev, err := r.Next(); err != nil || ev.Seq != 2 {
		t.Fatalf("frame after corrupt payload: %+v, %v", ev, err)
	}
}

// fixCRC recomputes a sealed frame's checksum over its (possibly
// modified) payload. frame is [len crc payload...].
func fixCRC(frame []byte) {
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
}

func TestBinaryReaderFrameTooLarge(t *testing.T) {
	stream := append(BinaryMagic(), binaryVersion)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxFramePayload+1)
	stream = append(stream, hdr[:]...)
	r := NewBinaryReader(bytes.NewReader(stream))
	_, err := r.Next()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// Unrecoverable: the error is sticky.
	if _, err2 := r.Next(); !errors.Is(err2, ErrFrameTooLarge) {
		t.Fatalf("second call: %v, want sticky ErrFrameTooLarge", err2)
	}
}

func TestBinaryWriterMatchesAppendBinary(t *testing.T) {
	events := binaryCorpus()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if want := AppendBinary(nil, events); !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("BinaryWriter output differs from AppendBinary")
	}
}

func TestBinaryWriterFlushKeepsStreamAppendable(t *testing.T) {
	// A mid-stream Flush seals a frame early; the reader must keep
	// decoding across the seam.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Emit(Event{Seq: 1, T: 1, Kind: KindArrival, Core: -1, Task: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Emit(Event{Seq: 2, T: 2, Kind: KindStart, Core: 0, Task: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadBinary(&buf)
	if err != nil || len(events) != 2 || events[1].Seq != 2 {
		t.Fatalf("decode across flush seam: %v, %+v", err, events)
	}
}

func TestBinaryWriterStickyError(t *testing.T) {
	w := NewBinaryWriter(&failWriter{}) // fails after 16 bytes, see obs_test.go
	for i := 0; i < 4000; i++ { // enough to overflow bufio and hit the writer
		w.Emit(Event{Seq: uint64(i + 1), T: float64(i), Kind: KindStart, Core: 0, Task: i})
	}
	if w.Err() == nil && w.Close() == nil {
		t.Fatal("want sticky error from failing writer")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close must keep reporting the sticky error")
	}
}

func TestReadEventsAutoDetect(t *testing.T) {
	events := []Event{
		{Seq: 1, T: 1, Kind: KindArrival, Core: -1, Task: 3, Cycles: 5, Interactive: true},
		{Seq: 2, T: 1.5, Kind: KindStart, Core: 0, Task: 3, Rate: 2.4},
	}
	bin := AppendBinary(nil, events)
	var jsonl bytes.Buffer
	jw := NewJSONLWriter(&jsonl)
	for _, ev := range events {
		jw.Emit(ev)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string][]byte{"binary": bin, "jsonl": jsonl.Bytes()} {
		got, err := ReadEvents(bytes.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, events) {
			t.Fatalf("%s: got %+v, want %+v", name, got, events)
		}
	}
	// Empty input is an empty (JSONL) trace, not an error.
	if got, err := ReadEvents(bytes.NewReader(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %d events", err, len(got))
	}
}

func TestDetectBinary(t *testing.T) {
	if !DetectBinary(AppendBinary(nil, nil)) {
		t.Error("encoded stream not detected")
	}
	for _, in := range [][]byte{nil, []byte("DVF"), []byte(`{"seq":1}`), []byte("DVFA....")} {
		if DetectBinary(in) {
			t.Errorf("false positive on %q", in)
		}
	}
}

func TestBinaryEncoderAppendZeroAlloc(t *testing.T) {
	var enc BinaryEncoder
	ev := Event{Seq: 1, T: 1.25, Kind: KindStart, Core: 3, Task: 9, Rate: 2.4, Eff: 1.251, Remaining: 7.5, Energy: 12.25}
	buf := make([]byte, 0, 4*binaryFrameTarget)
	// Warm up past the first frame seal so every buffer reaches its
	// steady-state capacity.
	for i := 0; i < 4096; i++ {
		ev.Seq++
		ev.T += 0.5
		buf = enc.AppendEvent(buf, ev)
	}
	buf = buf[:0]
	allocs := testing.AllocsPerRun(2000, func() {
		ev.Seq++
		ev.T += 0.5
		buf = enc.AppendEvent(buf[:0], ev)
	})
	// The steady state is the replication-log hot path: any per-event
	// allocation here lands on every emitted event of every session.
	if allocs != 0 {
		t.Errorf("AppendEvent allocates %v per event, want 0", allocs)
	}
}

func TestBinaryWriterEmitZeroAlloc(t *testing.T) {
	w := NewBinaryWriter(io.Discard)
	ev := Event{Seq: 1, T: 1.25, Kind: KindStart, Core: 3, Task: 9, Rate: 2.4, Eff: 1.251, Remaining: 7.5, Energy: 12.25}
	for i := 0; i < 4096; i++ {
		ev.Seq++
		ev.T += 0.5
		w.Emit(ev)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		ev.Seq++
		ev.T += 0.5
		w.Emit(ev)
	})
	if allocs != 0 {
		t.Errorf("BinaryWriter.Emit allocates %v per event, want 0", allocs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinaryAppendEvent(b *testing.B) {
	var enc BinaryEncoder
	ev := Event{Seq: 42, T: 1.25, Kind: KindStart, Core: 3, Task: 9, Rate: 2.4, Eff: 1.251, Remaining: 7.5, Energy: 12.25}
	buf := make([]byte, 0, 4*binaryFrameTarget)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Seq++
		ev.T += 0.5
		buf = enc.AppendEvent(buf[:0], ev)
	}
	_ = buf
}
