package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden .bintrace files")

// goldenEvents is the fixed sequence behind the wire-format goldens.
// It covers every record feature: kind interning (repeats and first
// uses), every optional field, negative core/task sentinels, the
// interactive flag, and non-monotonic seq deltas. Do not reorder or
// extend casually — the point is that the bytes never change.
func goldenEvents() []Event {
	return []Event{
		{Seq: 1, T: 0, Kind: KindArrival, Core: -1, Task: 1, Cycles: 12.5, Interactive: true},
		{Seq: 2, T: 0, Kind: KindCoreActive, Core: 0, Task: -1},
		{Seq: 3, T: 0, Kind: KindStart, Core: 0, Task: 1, Rate: 2.4, Eff: 0.001, Remaining: 12.5},
		{Seq: 4, T: 1.5, Kind: KindArrival, Core: -1, Task: 2, Cycles: 3.25},
		{Seq: 5, T: 1.5, Kind: KindDVFS, Core: 0, Task: 1, PrevRate: 2.4, Rate: 3, Eff: 1.501},
		{Seq: 6, T: 2.25, Kind: KindPreempt, Core: 0, Task: 1, Remaining: 6.75, Energy: 8.125},
		{Seq: 7, T: 2.25, Kind: KindStart, Core: 0, Task: 2, Rate: 3, Remaining: 3.25},
		{Seq: 8, T: 3.5, Kind: KindComplete, Core: 0, Task: 2, Energy: 4.5},
		{Seq: 9, T: 3.5, Kind: KindStart, Core: 0, Task: 1, Rate: 3, Remaining: 6.75, Energy: 8.125},
		{Seq: 10, T: 6, Kind: KindComplete, Core: 0, Task: 1, Energy: 21.375},
		{Seq: 11, T: 6, Kind: KindCoreIdle, Core: 0, Task: -1},
	}
}

// checkGoldenBytes compares got against testdata/<name>, rewriting the
// file under -update (mirroring the report package's golden idiom).
func checkGoldenBytes(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoded bytes differ from golden (%d vs %d bytes).\n"+
			"If the wire format changed intentionally, bump binaryVersion, keep decoding "+
			"the old version, and regenerate with -update.", name, len(got), len(want))
	}
}

// TestBinaryGoldenSingleFrame pins the exact bytes of a one-frame
// stream: any codec change that moves a single bit fails here.
func TestBinaryGoldenSingleFrame(t *testing.T) {
	checkGoldenBytes(t, "single_frame.bintrace", AppendBinary(nil, goldenEvents()))
}

// TestBinaryGoldenMultiFrame pins a stream with explicit frame seams
// (per-frame dictionary and baseline resets included).
func TestBinaryGoldenMultiFrame(t *testing.T) {
	events := goldenEvents()
	var enc BinaryEncoder
	var out []byte
	for i, ev := range events {
		out = enc.AppendEvent(out, ev)
		if i%4 == 3 {
			out = enc.Flush(out)
		}
	}
	out = enc.Flush(out)
	checkGoldenBytes(t, "multi_frame.bintrace", out)
}

// TestBinaryGoldenDecodes proves the committed goldens decode back to
// the source events — the reader side of the wire-format pin.
func TestBinaryGoldenDecodes(t *testing.T) {
	want := goldenEvents()
	for _, name := range []string{"single_frame.bintrace", "multi_frame.bintrace"} {
		raw, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("%v (run `go test ./internal/obs -update` to create)", err)
		}
		got, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !eventsBitEqual(got, want) {
			t.Errorf("%s: decode differs from source events", name)
		}
	}
}

// TestBinaryGoldenVersion1Frozen is the version-compatibility contract:
// testdata/v1_frozen.bintrace was written by the version-1 encoder and
// is NEVER regenerated — -update creates it only if absent. When
// binaryVersion is bumped, this test keeps proving the reader still
// decodes version-1 streams; deleting or rewriting the file to make
// the test pass defeats its purpose.
func TestBinaryGoldenVersion1Frozen(t *testing.T) {
	path := filepath.Join("testdata", "v1_frozen.bintrace")
	if _, err := os.Stat(path); os.IsNotExist(err) && *update {
		var enc BinaryEncoder
		var out []byte
		for i, ev := range goldenEvents() {
			out = enc.AppendEvent(out, ev)
			if i%5 == 4 {
				out = enc.Flush(out)
			}
		}
		out = enc.Flush(out)
		if out[4] != 1 {
			t.Fatalf("refusing to freeze a version-%d stream as the v1 artifact", out[4])
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (frozen golden missing; create once with -update)", err)
	}
	if raw[4] != 1 {
		t.Fatalf("frozen artifact claims version %d, want 1 — it must never be regenerated", raw[4])
	}
	got, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("version-1 stream no longer decodes: %v", err)
	}
	if !eventsBitEqual(got, goldenEvents()) {
		t.Error("version-1 stream decodes to different events")
	}
}
