// Package dvfsched reproduces "An Energy-efficient Task Scheduler for
// Multi-core Platforms with per-core DVFS Based on Task Characteristics"
// (Lin et al., ICPP 2014).
//
// The library decides, simultaneously, the assignment of tasks to CPU
// cores, the execution order of tasks on each core, and the per-task
// processing rate (DVFS frequency), so as to minimize the monetary cost
//
//	C = Re * energy + Rt * sum-of-turnaround-times
//
// It provides the paper's batch-mode optimal algorithms (Longest Task
// Last, Workload Based Greedy), its online-mode Least Marginal Cost
// heuristic, the dominating-position-range machinery (Algorithm 1), the
// dynamic insertion/deletion structures (Algorithms 4-6), baseline
// schedulers (Opportunistic Load Balancing, Power Saving, On-demand), a
// discrete-event multi-core simulator with per-core DVFS and a simulated
// power meter, and workload generators reproducing the paper's SPEC
// CPU2006 and Judgegirl evaluations.
//
// See the packages under internal/ for the implementation, cmd/ for
// command-line tools, and examples/ for runnable scenarios. DESIGN.md
// maps every paper contribution and experiment to a module;
// EXPERIMENTS.md records reproduced results.
package dvfsched
